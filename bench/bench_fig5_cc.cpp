// F5 — Figure 5: Connected Components execution time on the Facebook and
// LiveJournal-UG stand-ins.
//
// Paper's reported shape: CC is "pre-incrementalized", so ΔV and ΔV* send
// exactly the same number of messages (the message chart was elided for
// this reason) and ΔV shows no improvement — but crucially, no regression.
//
// Like bench_fig4, the --tiers axis runs the compiled programs on both ΔV
// execution substrates (bytecode VM vs reference tree interpreter) and
// --json writes machine-readable rows.
#include <iostream>

#include "algorithms/connected_components.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace deltav;
  Args args(argc, argv);
  const double scale =
      args.get_double("scale", 0.2, "dataset scale factor (1.0 = full)");
  const int workers =
      static_cast<int>(args.get_int("workers", 4, "engine worker threads"));
  const int reps = static_cast<int>(
      args.get_int("reps", 3, "repetitions averaged (paper: 3)"));
  const std::string tiers_flag = args.get_string(
      "tiers", "vm,tree", "ΔV execution tiers to run (vm, tree, or both)");
  const std::string json_path = args.get_string(
      "json", "", "write machine-readable rows to this path");
  if (args.help_requested()) {
    std::cout << args.help();
    return 0;
  }
  args.check_unused();
  const std::vector<dv::ExecTier> tiers = bench::parse_tiers(tiers_flag);

  bench::banner("Connected Components",
                "Figure 5 (Facebook & LiveJournal-UG, ΔV vs ΔV* vs "
                "Pregel+)");

  Table t = bench::make_metrics_table();
  bench::JsonReport json;
  json.set_path(json_path);
  bool msgs_equal = true;
  for (const char* ds : {"facebook-s", "livejournal-ug-s"}) {
    const auto g = graph::make_dataset(ds, scale);

    const auto full = dv::compile(dv::programs::kConnectedComponents, {});
    const auto star =
        dv::compile(dv::programs::kConnectedComponents,
                    dv::CompileOptions{.incrementalize = false});
    for (const dv::ExecTier tier : tiers) {
      const auto m_full = bench::averaged(
          reps, [&] { return bench::run_dv(full, g, {}, workers, tier); });
      const auto m_star = bench::averaged(
          reps, [&] { return bench::run_dv(star, g, {}, workers, tier); });
      const char* tn = dv::exec_tier_name(tier);
      bench::add_row(t, ds, "CC", "DV", m_full, tn);
      bench::add_row(t, ds, "CC", "DV*", m_star, tn);
      json.add(ds, "CC", "DV", tn, m_full);
      json.add(ds, "CC", "DV*", tn, m_star);
      msgs_equal = msgs_equal && m_full.messages == m_star.messages;
      if (tier == dv::ExecTier::kVm) {
        algorithms::CcOptions copt;
        copt.engine = bench::paper_engine(workers);
        Timer timer;
        const auto hand = algorithms::connected_components_pregel(g, copt);
        const auto m_hand =
            bench::from_stats(hand.stats, timer.elapsed_seconds());
        bench::add_row(t, ds, "CC", "Pregel+", m_hand, "-");
        json.add(ds, "CC", "Pregel+", "-", m_hand);
        msgs_equal = msgs_equal && m_full.messages == m_hand.messages;
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nShape check (paper footnote 14): all three systems sent "
            << (msgs_equal ? "the EXACT same" : "*** DIFFERENT ***")
            << " number of messages.\n"
            << "Scale=" << scale << ".\n";
  json.write("fig5_cc");
  return msgs_equal ? 0 : 1;
}
