// Shared harness for the paper-reproduction benches.
//
// Every bench binary prints column-aligned tables (common/table.h) with one
// row per (graph, algorithm, system) so EXPERIMENTS.md can be filled by
// copy-paste. "System" is one of the paper's three: ΔV (full pipeline),
// ΔV* (no incrementalization), and Pregel+ (the hand-written baseline).
//
// Reported metrics:
//   wall(s)  — measured wall-clock of compute+exchange on this machine;
//   sim(s)   — simulated 8×m4.xlarge/750Mbps cluster time (net::ClusterModel)
//              = local compute + modeled cross-machine communication;
//   msgs     — messages sent by compute() (pre-combining);
//   MB       — logical wire bytes of those messages.
//
// Message and byte counts are exact and hardware-independent; they are the
// paper's Figure-4-right/Figure-5 quantities. Times reproduce the *shape*
// (who wins, roughly by how much), not the absolute EC2 numbers.
#pragma once

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/table.h"
#include "common/timer.h"
#include "dv/compiler.h"
#include "dv/obs/obs.h"
#include "dv/programs/programs.h"
#include "dv/runtime/runner.h"
#include "graph/datasets.h"
#include "net/cluster_model.h"
#include "pregel/engine.h"

namespace deltav::bench {

struct Metrics {
  double wall_seconds = 0;
  double sim_seconds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::size_t supersteps = 0;
  std::size_t state_bytes = 0;
};

inline Metrics from_stats(const pregel::RunStats& stats,
                          double wall_seconds) {
  Metrics m;
  m.wall_seconds = wall_seconds;
  m.sim_seconds = stats.total_sim_seconds();
  m.messages = stats.total_messages_sent();
  m.bytes = stats.total_bytes_sent();
  m.supersteps = stats.num_supersteps();
  return m;
}

/// Engine options mirroring the paper's deployment (8 machines × 2
/// workers); `workers` caps the real thread count for this host.
inline pregel::EngineOptions paper_engine(int workers = 4) {
  pregel::EngineOptions o;
  o.num_workers = workers;
  o.cluster.machines = 8;
  o.cluster.workers_per_machine = 2;
  o.cluster.bandwidth_bytes_per_sec = 750e6 / 8.0;
  return o;
}

/// Runs a compiled ΔV program on the given execution tier, returning
/// metrics. Both tiers produce identical message/byte counts (the
/// differential fuzzer enforces bit-equality); only the timings differ.
inline Metrics run_dv(const dv::CompiledProgram& cp,
                      const graph::CsrGraph& g,
                      std::map<std::string, dv::Value> params, int workers,
                      dv::ExecTier tier = dv::ExecTier::kVm,
                      obs::Collector* collector = nullptr) {
  dv::DvRunOptions o;
  o.engine = paper_engine(workers);
  o.params = std::move(params);
  o.tier = tier;
  o.collector = collector;  // per-bench local meter; no global install
  Timer t;
  const auto result = dv::run_program(cp, g, o);
  // A bench row must measure the tier it claims: a silent native→vm
  // fallback would publish VM numbers under the native label.
  DV_CHECK_MSG(result.tier_used == tier,
               "bench run fell back from tier '"
                   << dv::exec_tier_name(tier) << "' to '"
                   << dv::exec_tier_name(result.tier_used)
                   << "': " << result.native_fallback);
  Metrics m = from_stats(result.stats, t.elapsed_seconds());
  m.state_bytes = cp.state_bytes();
  return m;
}

/// Parses a --tiers flag value: comma-joined "vm" / "tree" / "native".
inline std::vector<dv::ExecTier> parse_tiers(const std::string& flag) {
  std::vector<dv::ExecTier> tiers;
  std::size_t pos = 0;
  while (pos <= flag.size()) {
    const std::size_t comma = flag.find(',', pos);
    const std::size_t end = comma == std::string::npos ? flag.size() : comma;
    tiers.push_back(dv::parse_exec_tier(flag.substr(pos, end - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  DV_CHECK_MSG(!tiers.empty(), "--tiers must name at least one tier");
  return tiers;
}

/// Repeats a measurement `reps` times, keeping the minimum wall-clock —
/// the noise-robust statistic for a deterministic workload, where every
/// deviation from the true cost is additive interference. Simulated time
/// and message/byte counts are deterministic and must be identical across
/// runs; this is verified.
template <typename Fn>
Metrics averaged(int reps, Fn&& fn) {
  Metrics acc = fn();
  for (int i = 1; i < reps; ++i) {
    const Metrics m = fn();
    DV_CHECK_MSG(m.messages == acc.messages && m.bytes == acc.bytes,
                 "nondeterministic message counts across repetitions");
    acc.wall_seconds = std::min(acc.wall_seconds, m.wall_seconds);
    acc.sim_seconds = std::min(acc.sim_seconds, m.sim_seconds);
  }
  return acc;
}

inline void add_row(Table& table, const std::string& graph,
                    const std::string& algo, const std::string& system,
                    const Metrics& m, const std::string& tier = "vm") {
  table.row()
      .cell(graph)
      .cell(algo)
      .cell(system)
      .cell(tier)
      .cell(m.wall_seconds, 3)
      .cell(m.sim_seconds, 3)
      .cell(static_cast<unsigned long long>(m.messages))
      .cell(static_cast<double>(m.bytes) / 1e6, 2)
      .cell(static_cast<unsigned long long>(m.supersteps));
}

inline Table make_metrics_table() {
  return Table({"graph", "algorithm", "system", "tier", "wall(s)", "sim(s)",
                "msgs", "MB", "supersteps"});
}

/// Machine-readable benchmark output (`--json <path>`): one object per
/// measured row, written once at exit. The schema is the CI perf-tracking
/// contract — BENCH_fig4.json in the repo root is the committed baseline —
/// so fields are only ever added, never renamed.
class JsonReport {
 public:
  void set_path(std::string path) { path_ = std::move(path); }
  bool enabled() const { return !path_.empty(); }

  /// `fold` labels which Δ-send fold path the row ran ("atomic" or
  /// "buffered"); empty omits the field (rows where the axis is
  /// meaningless, e.g. snapshot save/restore).
  void add(const std::string& graph, const std::string& algo,
           const std::string& system, const std::string& tier,
           const Metrics& m, const std::string& fold = "") {
    if (enabled()) rows_.push_back(Row{graph, algo, system, tier, fold, m});
  }

  /// Attaches the bench's observability counters; emitted as a top-level
  /// "metrics" object. Counts aggregate every measured run (including
  /// repetitions) of the bench invocation — deterministic series scale
  /// linearly with reps, timings do not appear here.
  void set_metrics(std::map<std::string, std::uint64_t> counters) {
    obs_counters_ = std::move(counters);
  }

  void write(const std::string& bench_name) const {
    if (!enabled()) return;
    std::ofstream out(path_);
    DV_CHECK_MSG(out.good(), "cannot open --json path '" << path_ << "'");
    out << "{\n  \"bench\": \"" << bench_name << "\",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      const Metrics& m = r.metrics;
      out << (i ? ",\n" : "\n")
          << "    {\"graph\": \"" << r.graph << "\", \"algorithm\": \""
          << r.algo << "\", \"system\": \"" << r.system
          << "\", \"tier\": \"" << r.tier << "\", \"wall_seconds\": "
          << std::setprecision(6) << m.wall_seconds
          << ", \"sim_seconds\": " << m.sim_seconds
          << ", \"messages\": " << m.messages << ", \"bytes\": " << m.bytes
          << ", \"supersteps\": " << m.supersteps
          << ", \"state_bytes\": " << m.state_bytes;
      if (!r.fold.empty()) out << ", \"fold_path\": \"" << r.fold << "\"";
      out << "}";
    }
    out << "\n  ]";
    if (!obs_counters_.empty()) {
      out << ",\n  \"metrics\": {";
      bool first = true;
      for (const auto& [name, value] : obs_counters_) {
        out << (first ? "\n" : ",\n") << "    \"" << name
            << "\": " << value;
        first = false;
      }
      out << "\n  }";
    }
    out << "\n}\n";
    DV_CHECK_MSG(out.good(), "failed writing --json path '" << path_ << "'");
    std::cout << "\nwrote " << rows_.size() << " rows to " << path_ << "\n";
  }

 private:
  struct Row {
    std::string graph, algo, system, tier, fold;
    Metrics metrics;
  };
  std::string path_;
  std::vector<Row> rows_;
  std::map<std::string, std::uint64_t> obs_counters_;
};

/// Prints the standard bench banner.
inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "== " << title << " ==\n"
            << "reproduces: " << paper_ref << "\n\n";
}

}  // namespace deltav::bench
