// Shared harness for the paper-reproduction benches.
//
// Every bench binary prints column-aligned tables (common/table.h) with one
// row per (graph, algorithm, system) so EXPERIMENTS.md can be filled by
// copy-paste. "System" is one of the paper's three: ΔV (full pipeline),
// ΔV* (no incrementalization), and Pregel+ (the hand-written baseline).
//
// Reported metrics:
//   wall(s)  — measured wall-clock of compute+exchange on this machine;
//   sim(s)   — simulated 8×m4.xlarge/750Mbps cluster time (net::ClusterModel)
//              = local compute + modeled cross-machine communication;
//   msgs     — messages sent by compute() (pre-combining);
//   MB       — logical wire bytes of those messages.
//
// Message and byte counts are exact and hardware-independent; they are the
// paper's Figure-4-right/Figure-5 quantities. Times reproduce the *shape*
// (who wins, roughly by how much), not the absolute EC2 numbers.
#pragma once

#include <iostream>
#include <map>
#include <string>

#include "common/args.h"
#include "common/table.h"
#include "common/timer.h"
#include "dv/compiler.h"
#include "dv/programs/programs.h"
#include "dv/runtime/runner.h"
#include "graph/datasets.h"
#include "net/cluster_model.h"
#include "pregel/engine.h"

namespace deltav::bench {

struct Metrics {
  double wall_seconds = 0;
  double sim_seconds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::size_t supersteps = 0;
  std::size_t state_bytes = 0;
};

inline Metrics from_stats(const pregel::RunStats& stats,
                          double wall_seconds) {
  Metrics m;
  m.wall_seconds = wall_seconds;
  m.sim_seconds = stats.total_sim_seconds();
  m.messages = stats.total_messages_sent();
  m.bytes = stats.total_bytes_sent();
  m.supersteps = stats.num_supersteps();
  return m;
}

/// Engine options mirroring the paper's deployment (8 machines × 2
/// workers); `workers` caps the real thread count for this host.
inline pregel::EngineOptions paper_engine(int workers = 4) {
  pregel::EngineOptions o;
  o.num_workers = workers;
  o.cluster.machines = 8;
  o.cluster.workers_per_machine = 2;
  o.cluster.bandwidth_bytes_per_sec = 750e6 / 8.0;
  return o;
}

/// Runs a compiled ΔV program, returning metrics.
inline Metrics run_dv(const dv::CompiledProgram& cp,
                      const graph::CsrGraph& g,
                      std::map<std::string, dv::Value> params, int workers) {
  dv::DvRunOptions o;
  o.engine = paper_engine(workers);
  o.params = std::move(params);
  Timer t;
  const auto result = dv::run_program(cp, g, o);
  Metrics m = from_stats(result.stats, t.elapsed_seconds());
  m.state_bytes = cp.state_bytes();
  return m;
}

/// Repeats a measurement `reps` times (the paper reports 3-run averages),
/// averaging the timings; message/byte counts must be identical across
/// runs (the engine is deterministic) and are verified to be.
template <typename Fn>
Metrics averaged(int reps, Fn&& fn) {
  Metrics acc = fn();
  for (int i = 1; i < reps; ++i) {
    const Metrics m = fn();
    DV_CHECK_MSG(m.messages == acc.messages && m.bytes == acc.bytes,
                 "nondeterministic message counts across repetitions");
    acc.wall_seconds += m.wall_seconds;
    acc.sim_seconds += m.sim_seconds;
  }
  acc.wall_seconds /= reps;
  acc.sim_seconds /= reps;
  return acc;
}

inline void add_row(Table& table, const std::string& graph,
                    const std::string& algo, const std::string& system,
                    const Metrics& m) {
  table.row()
      .cell(graph)
      .cell(algo)
      .cell(system)
      .cell(m.wall_seconds, 3)
      .cell(m.sim_seconds, 3)
      .cell(static_cast<unsigned long long>(m.messages))
      .cell(static_cast<double>(m.bytes) / 1e6, 2)
      .cell(static_cast<unsigned long long>(m.supersteps));
}

inline Table make_metrics_table() {
  return Table({"graph", "algorithm", "system", "wall(s)", "sim(s)", "msgs",
                "MB", "supersteps"});
}

/// Prints the standard bench banner.
inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "== " << title << " ==\n"
            << "reproduces: " << paper_ref << "\n\n";
}

}  // namespace deltav::bench
