// A3 — §6.6 / §9 ablation: halt-by-default and work-queue scheduling.
//
// Two independent knobs the paper discusses:
//   * halt insertion (§6.6): vertices halt every superstep and wake only
//     on messages — reduces how many vertices *compute*;
//   * the §9 future-work scheduler: with halt-by-default, runnable
//     vertices can be taken from a per-worker queue fed by message
//     delivery instead of scanning every vertex each superstep.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace deltav;
  Args args(argc, argv);
  const double scale = args.get_double("scale", 0.05, "dataset scale");
  const int workers =
      static_cast<int>(args.get_int("workers", 4, "engine worker threads"));
  if (args.help_requested()) {
    std::cout << args.help();
    return 0;
  }
  args.check_unused();

  bench::banner("Halt-by-default & scheduling ablation", "§6.6 and §9");

  const auto g = graph::make_dataset("wikipedia-s", scale);
  const std::map<std::string, dv::Value> params = {
      {"steps", dv::Value::of_int(29)}};

  Table t({"variant", "schedule", "active-vertex computes", "msgs",
           "wall(s)", "sim(s)"});

  struct Config {
    const char* name;
    bool halts;
    pregel::ScheduleMode mode;
  };
  const Config configs[] = {
      {"ΔV no-halts", false, pregel::ScheduleMode::kScanAll},
      {"ΔV halts", true, pregel::ScheduleMode::kScanAll},
      {"ΔV halts", true, pregel::ScheduleMode::kWorkQueue},
  };

  for (const auto& c : configs) {
    dv::CompileOptions copts;
    copts.insert_halts = c.halts;
    const auto cp = dv::compile(dv::programs::kPageRank, copts);
    dv::DvRunOptions o;
    o.engine = bench::paper_engine(workers);
    o.engine.schedule = c.mode;
    o.params = params;
    Timer timer;
    const auto r = dv::run_program(cp, g, o);
    const double wall = timer.elapsed_seconds();
    std::uint64_t active = 0;
    for (const auto& s : r.stats.supersteps) active += s.active_vertices;
    t.row()
        .cell(c.name)
        .cell(c.mode == pregel::ScheduleMode::kScanAll ? "scan-all"
                                                       : "work-queue")
        .cell(static_cast<unsigned long long>(active))
        .cell(static_cast<unsigned long long>(
            r.stats.total_messages_sent()))
        .cell(wall, 3)
        .cell(r.stats.total_sim_seconds(), 3);
  }
  t.print(std::cout);
  std::cout <<
      "\nShape checks: halts cut active-vertex computes once ranks start\n"
      "converging (messages are identical across variants); the work-queue\n"
      "scheduler removes the per-superstep full scan the paper's §9 calls\n"
      "out.\n";
  return 0;
}
