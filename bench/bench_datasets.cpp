// T1 — Table 1: the evaluation datasets.
//
// Prints the paper's dataset inventory next to the synthetic stand-ins this
// reproduction generates (R-MAT graphs matching directedness and density;
// DESIGN.md §2 documents the substitution).
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace deltav;
  Args args(argc, argv);
  const double scale =
      args.get_double("scale", 0.1, "dataset scale factor (1.0 = full)");
  if (args.help_requested()) {
    std::cout << args.help();
    return 0;
  }
  args.check_unused();

  bench::banner("Datasets (stand-ins for Table 1)",
                "Table 1: Wikipedia, LiveJournal-DG, Facebook, "
                "LiveJournal-UG");

  Table t({"stand-in", "mirrors (paper |V|/|E|)", "type", "|V|", "|E|",
           "max-deg"});
  for (const auto& spec : graph::paper_datasets()) {
    const auto g = graph::make_dataset(spec, scale);
    t.row()
        .cell(spec.name)
        .cell(spec.mirrors)
        .cell(spec.directed ? "directed" : "undirected")
        .cell(static_cast<unsigned long long>(g.num_vertices()))
        .cell(static_cast<unsigned long long>(g.num_logical_edges()))
        .cell(static_cast<unsigned long long>(g.max_out_degree()));
  }
  t.print(std::cout);
  std::cout << "\n(scale=" << scale
            << "; message-count ratios are scale-invariant)\n";
  return 0;
}
