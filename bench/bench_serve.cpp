// Serving benchmark: warm multi-tenant serving vs cold re-execution.
//
// Drives a SessionHost (dv/serve) the way the dv_serve daemon does, but
// in-process: N writer threads push insert-only mutation batches through
// the admission queue while M reader threads hammer point reads against
// the published state view. The workload is the paper's connected
// components (integer min-label relaxation) on an undirected R-MAT graph
// — insert-only streams keep every epoch warm-eligible, so the contrast
// against the same host with force_cold=true isolates exactly what the
// paper's incrementalization buys a serving deployment: the cold host
// re-runs the program from scratch for every committed epoch, the warm
// host Δ-patches accumulators and wakes only the mutation frontier.
//
// Reported, per system:
//   wall(s)      — first enqueue to drained queue (flush returned);
//   epochs/sec   — committed epochs over that wall-clock. Group commit
//                  makes this ≠ batches/sec: concurrent writers coalesce
//                  into shared epochs (the coalesce column);
//   p50/p99(us)  — read latency percentiles over every reader get().
//                  Reads are served from the double-buffered view, so
//                  they must stay flat regardless of epoch cost;
//   supersteps   — summed over committed epochs.
//
// A second block prices restart recovery: the warm host checkpoints
// every epoch (checkpoint_every=1); recovery-restore rebuilds a serving
// host from the last checkpoint and waits until it is ready, and
// recovery-cold is the restart a deployment without snapshots would face
// — reconverging from scratch on the same final graph.
//
// Exit-enforced at the default scale (>= 10): warm serving beats cold
// re-execution on drain wall-clock, and checkpoint recovery beats cold
// reconvergence. BENCH_serve.json in the repo root is the committed
// baseline.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "dv/persist/snapshot.h"
#include "dv/serve/session_host.h"
#include "graph/generators.h"
#include "pregel/engine.h"

namespace {

using namespace deltav;

struct ServeMetrics {
  bench::Metrics base;
  double epochs_per_sec = 0;
  std::size_t epochs = 0;
  std::size_t batches = 0;
  double coalesce = 1;  // admitted batches per committed epoch
  std::uint64_t reads = 0;
  double p50_us = 0;
  double p99_us = 0;
};

double percentile(std::vector<double>& us, double p) {
  if (us.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(us.size() - 1));
  std::nth_element(us.begin(), us.begin() + static_cast<std::ptrdiff_t>(idx),
                   us.end());
  return us[idx];
}

std::vector<std::vector<graph::MutationBatch>> writer_streams(
    std::uint64_t seed, std::size_t n, std::int64_t writers,
    std::int64_t batches, std::int64_t edits) {
  std::vector<std::vector<graph::MutationBatch>> out;
  for (std::int64_t w = 0; w < writers; ++w) {
    Rng rng(seed + static_cast<std::uint64_t>(w));
    std::vector<graph::MutationBatch> stream;
    for (std::int64_t b = 0; b < batches; ++b) {
      graph::MutationBatch mb;
      for (std::int64_t e = 0; e < edits; ++e) {
        const auto u = static_cast<graph::VertexId>(rng.next_below(n));
        const auto v = static_cast<graph::VertexId>(rng.next_below(n));
        if (u != v) mb.insert_edge(u, v);
      }
      if (!mb.empty()) stream.push_back(std::move(mb));
    }
    out.push_back(std::move(stream));
  }
  return out;
}

dv::serve::HostOptions host_options(int workers, bool force_cold,
                                    double commit_window_ms,
                                    std::size_t queue_limit) {
  dv::serve::HostOptions o;
  o.session.run.engine = bench::paper_engine(workers);
  o.session.run.engine.schedule = pregel::ScheduleMode::kWorkQueue;
  o.session.force_cold = force_cold;
  o.commit_window_ms = commit_window_ms;
  // A bound well below the stream length matters: with an unbounded queue
  // the writers outrun the engine and the whole run collapses into one
  // giant epoch, which measures nothing. Backpressure makes the engine
  // commit a stream of group-commit epochs, which is the serving shape.
  o.queue_limit = queue_limit;
  o.collect_metrics = false;  // unmetered timings; stats() carries counts
  return o;
}

/// One serving run: writers push their streams, readers hammer gets, the
/// run ends when every batch is applied (flush). Wall-clock covers the
/// write-to-drain interval only — initial convergence is identical for
/// warm and cold and is excluded, as in bench_stream.
ServeMetrics run_serve(
    const dv::CompiledProgram& cp, const graph::CsrGraph& graph,
    const std::vector<std::vector<graph::MutationBatch>>& streams,
    int workers, bool force_cold, double commit_window_ms,
    std::size_t queue_limit, std::int64_t readers) {
  dv::serve::SessionHost host(
      "bench", dv::compile(cp.source, cp.options), graph,
      host_options(workers, force_cold, commit_window_ms, queue_limit));
  host.wait_ready();

  std::atomic<bool> stop_readers{false};
  std::vector<std::vector<double>> read_us(
      static_cast<std::size_t>(readers));
  std::vector<std::thread> reader_threads;
  const auto n = static_cast<graph::VertexId>(host.stats().vertices);
  for (std::int64_t r = 0; r < readers; ++r) {
    reader_threads.emplace_back([&, r] {
      auto& lat = read_us[static_cast<std::size_t>(r)];
      graph::VertexId v = static_cast<graph::VertexId>(r);
      while (!stop_readers.load(std::memory_order_relaxed)) {
        Timer t;
        (void)host.get(v % n, "comp");
        // Fractional microseconds: view reads are a mutex-guarded pointer
        // copy plus an array index, routinely under 1us.
        lat.push_back(t.elapsed_seconds() * 1e6);
        v += 7919;  // stride the reads across the id space
      }
    });
  }

  Timer wall;
  std::vector<std::thread> writer_threads;
  for (const auto& stream : streams) {
    writer_threads.emplace_back([&host, &stream] {
      for (const graph::MutationBatch& b : stream) host.enqueue(b);
    });
  }
  for (std::thread& t : writer_threads) t.join();
  host.flush();
  const double drain_seconds = wall.elapsed_seconds();

  stop_readers.store(true, std::memory_order_relaxed);
  for (std::thread& t : reader_threads) t.join();

  const dv::serve::HostStats s = host.stats();
  ServeMetrics m;
  m.base.wall_seconds = drain_seconds;
  m.base.supersteps = s.supersteps;
  m.base.messages = s.messages;
  m.base.state_bytes = cp.state_bytes();
  m.epochs = s.epochs_committed;
  m.batches = s.batches_admitted;
  m.epochs_per_sec =
      drain_seconds > 0 ? static_cast<double>(s.epochs_committed) /
                              drain_seconds
                        : 0;
  m.coalesce = s.epochs_committed > 0
                   ? static_cast<double>(s.batches_admitted) /
                         static_cast<double>(s.epochs_committed)
                   : 1;
  std::vector<double> all;
  for (auto& lat : read_us) all.insert(all.end(), lat.begin(), lat.end());
  m.reads = all.size();
  m.p50_us = percentile(all, 0.50);
  m.p99_us = percentile(all, 0.99);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Args args(argc, argv);
    const auto scale = args.get_int("scale", 10, "R-MAT vertices = 2^scale");
    const auto degree = args.get_int("degree", 4, "R-MAT edges per vertex");
    const int workers = static_cast<int>(
        args.get_int("workers", 4, "engine worker threads per session"));
    const auto writers =
        args.get_int("writers", 4, "concurrent writer threads");
    const auto readers =
        args.get_int("readers", 2, "concurrent reader threads");
    const auto batches =
        args.get_int("batches", 64, "mutation batches per writer");
    const auto edits =
        args.get_int("edits", 8, "edge insertions per batch");
    const double commit_window_ms = args.get_double(
        "commit_window_ms", 0,
        "group-commit window handed to the host (0 = natural batching)");
    const auto queue_limit = static_cast<std::size_t>(args.get_int(
        "queue_limit", 16,
        "admission-queue bound (backpressure shapes the epoch stream)"));
    const auto seed = static_cast<std::uint64_t>(
        args.get_int("seed", 42, "graph and stream seed"));
    const std::string json_path =
        args.get_string("json", "", "write JSON rows here");
    if (args.help_requested()) {
      std::cout << args.help();
      return 0;
    }
    args.check_unused();

    bench::banner("dv_serve: warm serving vs cold re-execution",
                  "§9 dynamic graphs as a service (DESIGN.md §10)");

    const auto n = static_cast<std::size_t>(1) << scale;
    const auto m = n * static_cast<std::size_t>(degree);
    const std::string graph_tag =
        "rmat-2^" + std::to_string(scale) + "x" + std::to_string(degree);
    graph::RmatOptions ro;
    ro.directed = false;
    const graph::CsrGraph graph = graph::rmat(n, m, seed, ro);
    const dv::CompiledProgram cp =
        dv::compile(dv::programs::kConnectedComponents, {});
    const auto streams = writer_streams(seed + 1, n, writers, batches, edits);

    const ServeMetrics warm = run_serve(cp, graph, streams, workers,
                                        /*force_cold=*/false,
                                        commit_window_ms, queue_limit,
                                        readers);
    const ServeMetrics cold = run_serve(cp, graph, streams, workers,
                                        /*force_cold=*/true,
                                        commit_window_ms, queue_limit,
                                        readers);

    // Restart recovery: serve the same stream on a host checkpointing
    // every epoch, kill it (abandoning nothing: the stream was flushed),
    // then price rebuilding a ready serving host from the checkpoint
    // against reconverging cold on the same final graph.
    const std::string ckpt = "bench_serve.ckpt";
    double recovery_seconds = 0;
    double cold_restart_seconds = 0;
    {
      auto opts = host_options(workers, false, commit_window_ms,
                               queue_limit);
      opts.checkpoint_every = 1;
      opts.checkpoint_path = ckpt;
      auto host = std::make_unique<dv::serve::SessionHost>(
          "bench-ckpt", dv::compile(cp.source, cp.options), graph, opts);
      host->wait_ready();
      for (const auto& stream : streams)
        for (const graph::MutationBatch& b : stream) host->enqueue(b);
      host->flush();
      host->kill();  // the in-process stand-in for a daemon crash
      host.reset();

      // Min of 3 attempts, as bench::averaged does for the other benches:
      // both restarts are milliseconds at the default scale, where a
      // single scheduler hiccup could flip the comparison.
      recovery_seconds = 1e9;
      for (int rep = 0; rep < 3; ++rep) {
        Timer tr;
        dv::serve::SessionHost restored(
            "bench-restored", dv::compile(cp.source, cp.options),
            dv::persist::read_file_bytes(ckpt),
            host_options(workers, false, commit_window_ms, queue_limit));
        restored.wait_ready();
        recovery_seconds = std::min(recovery_seconds, tr.elapsed_seconds());
      }

      // The restart without snapshots: replay the whole mutation history
      // into a fresh session, then reconverge from scratch. The replay's
      // graph bookkeeping is shared cost; the convergence is the price.
      dv::streaming::SessionOptions so;
      so.run.engine = bench::paper_engine(workers);
      auto offline = dv::streaming::make_stream_session(cp, graph, so);
      offline->converge();
      for (const auto& stream : streams)
        for (const graph::MutationBatch& b : stream) offline->apply(b);
      const graph::CsrGraph final_csr = offline->graph().materialize();
      cold_restart_seconds = 1e9;
      for (int rep = 0; rep < 3; ++rep) {
        Timer tc;
        dv::serve::SessionHost coldhost(
            "bench-coldstart", dv::compile(cp.source, cp.options), final_csr,
            host_options(workers, false, commit_window_ms, queue_limit));
        coldhost.wait_ready();
        cold_restart_seconds =
            std::min(cold_restart_seconds, tc.elapsed_seconds());
      }
      std::remove(ckpt.c_str());
    }

    Table t({"graph", "algorithm", "system", "tier", "wall(s)", "epochs/s",
             "coalesce", "p50(us)", "p99(us)", "supersteps"});
    for (const auto& [system, met] :
         {std::pair{"serve-warm", &warm}, std::pair{"serve-cold", &cold}}) {
      t.row()
          .cell(graph_tag)
          .cell("cc")
          .cell(system)
          .cell("vm")
          .cell(met->base.wall_seconds, 4)
          .cell(met->epochs_per_sec, 1)
          .cell(met->coalesce, 2)
          .cell(met->p50_us, 1)
          .cell(met->p99_us, 1)
          .cell(static_cast<unsigned long long>(met->base.supersteps));
    }
    t.row()
        .cell(graph_tag).cell("cc").cell("recovery-restore").cell("vm")
        .cell(recovery_seconds, 4).cell(0.0, 1).cell(0.0, 2).cell(0.0, 1)
        .cell(0.0, 1).cell(0ull);
    t.row()
        .cell(graph_tag).cell("cc").cell("recovery-cold").cell("vm")
        .cell(cold_restart_seconds, 4).cell(0.0, 1).cell(0.0, 2).cell(0.0, 1)
        .cell(0.0, 1).cell(0ull);
    t.print(std::cout);
    std::cout << "\nShape checks: serve-warm drains the same admitted"
                 " batches in less wall-clock\nthan serve-cold, and"
                 " checkpoint recovery is cheaper than a cold restart\n"
                 "(both exit-enforced from the default scale up).\n";

    if (!json_path.empty()) {
      // bench_common JsonReport keys plus serve-specific extras (the
      // schema contract is add-only; consumers tolerate new keys).
      std::ofstream out(json_path);
      DV_CHECK_MSG(out.good(), "cannot open --json path '" << json_path
                                                           << "'");
      out << "{\n  \"bench\": \"bench_serve\",\n  \"rows\": [";
      bool first = true;
      const auto row = [&](const std::string& system, double wall,
                           const ServeMetrics* sm) {
        out << (first ? "\n" : ",\n") << "    {\"graph\": \"" << graph_tag
            << "\", \"algorithm\": \"cc\", \"system\": \"" << system
            << "\", \"tier\": \"vm\", \"wall_seconds\": "
            << std::setprecision(6) << wall << ", \"sim_seconds\": 0"
            << ", \"messages\": " << (sm ? sm->base.messages : 0)
            << ", \"bytes\": 0"
            << ", \"supersteps\": " << (sm ? sm->base.supersteps : 0)
            << ", \"state_bytes\": " << cp.state_bytes();
        if (sm != nullptr) {
          out << ", \"epochs\": " << sm->epochs
              << ", \"batches\": " << sm->batches
              << ", \"epochs_per_sec\": " << sm->epochs_per_sec
              << ", \"coalesce\": " << sm->coalesce
              << ", \"reads\": " << sm->reads
              << ", \"read_p50_us\": " << sm->p50_us
              << ", \"read_p99_us\": " << sm->p99_us
              << ", \"writers\": " << writers
              << ", \"readers\": " << readers;
        }
        out << "}";
        first = false;
      };
      row("serve-warm", warm.base.wall_seconds, &warm);
      row("serve-cold", cold.base.wall_seconds, &cold);
      row("recovery-restore", recovery_seconds, nullptr);
      row("recovery-cold", cold_restart_seconds, nullptr);
      out << "\n  ]\n}\n";
      DV_CHECK_MSG(out.good(),
                   "failed writing --json path '" << json_path << "'");
      std::cout << "wrote 4 rows to " << json_path << "\n";
    }

    // Noise gate as in bench_stream: below the default scale both sides
    // are dominated by fixed per-epoch costs; rows still emit.
    if (scale >= 10 && warm.base.wall_seconds >= cold.base.wall_seconds) {
      std::cerr << "bench_serve: warm serving did not beat cold"
                   " re-execution\n";
      return 1;
    }
    if (scale >= 10 && recovery_seconds >= cold_restart_seconds) {
      std::cerr << "bench_serve: checkpoint recovery did not beat a cold"
                   " restart\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_serve: " << e.what() << "\n";
    return 2;
  }
}
