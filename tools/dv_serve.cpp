// dv_serve: multi-tenant streaming graph service over warm incremental
// sessions (DESIGN.md §10).
//
// A long-running daemon hosting many named sessions — each a (program,
// graph, tier) triple kept converged by its own engine thread. Clients
// speak the line protocol of dv/serve/protocol.h over TCP:
//
//   # terminal 1
//   dv_serve --port=7433
//   # terminal 2 (one request per line; see README "Serving quickstart")
//   printf 'CREATE pr pagerank rmat:10x8 params=steps=30\nMUT pr\n...'
//     | nc localhost 7433
//
// Concurrent MUTs against one session coalesce into shared epochs (group
// commit); GET/TOPK are answered from the last committed epoch's
// published state and never wait for the epoch in flight. CREATE with
// checkpoint_every=K checkpoints every K epochs; CREATE with
// restore=<path> warm-starts from such a checkpoint, falling back to a
// cold rebuild when the snapshot is rejected.
//
// --stdio serves one session of the same protocol over stdin/stdout (no
// sockets — CI smoke and scripting). SHUTDOWN stops the whole daemon
// gracefully (sessions drain their admitted batches); QUIT only closes
// the issuing connection.

#include <atomic>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/args.h"
#include "common/check.h"
#include "dv/obs/report.h"
#include "dv/serve/protocol.h"
#include "net/tcp.h"

namespace {

using namespace deltav;

class Daemon {
 public:
  Daemon(dv::serve::HostOptions defaults, std::uint16_t port,
         const std::string& bind_addr)
      : core_(std::move(defaults)), listener_(port, bind_addr) {}

  std::uint16_t port() const { return listener_.port(); }
  dv::serve::ServeCore& core() { return core_; }

  void run() {
    for (;;) {
      net::TcpStream s = listener_.accept();
      if (!s.valid()) break;  // listener closed: shutting down
      std::lock_guard<std::mutex> lock(mu_);
      if (shutting_down_) break;
      conns_.push_back(std::make_shared<net::TcpStream>(std::move(s)));
      const std::shared_ptr<net::TcpStream> conn = conns_.back();
      threads_.emplace_back([this, conn] { serve(conn); });
    }
    for (std::thread& t : threads_) t.join();
  }

  void request_shutdown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return;
    shutting_down_ = true;
    listener_.close();
    // Wake every connection thread blocked in read_line: they see EOF,
    // finish their in-flight response, and exit.
    for (const auto& conn : conns_) conn->shutdown();
  }

 private:
  void serve(const std::shared_ptr<net::TcpStream>& s) {
    dv::serve::Conn conn;
    std::string line;
    try {
      while (s->read_line(line)) {
        if (!conn.in_mut && line == "SHUTDOWN") {
          s->write_line("OK shutting down");
          request_shutdown();
          return;
        }
        bool quit = false;
        const std::string resp = core_.handle_line(conn, line, &quit);
        if (!resp.empty()) s->write_line(resp);
        if (quit) return;
      }
    } catch (const std::exception& e) {
      // A hung-up peer mid-write is normal churn, not a daemon error.
      std::cerr << "dv_serve: connection dropped: " << e.what() << "\n";
    }
  }

  dv::serve::ServeCore core_;
  net::TcpListener listener_;
  std::mutex mu_;
  bool shutting_down_ = false;
  std::vector<std::shared_ptr<net::TcpStream>> conns_;
  std::vector<std::thread> threads_;
};

/// --stdio: the same protocol, one connection, no sockets.
int run_stdio(dv::serve::HostOptions defaults) {
  dv::serve::ServeCore core(std::move(defaults));
  dv::serve::Conn conn;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!conn.in_mut && line == "SHUTDOWN") {
      std::cout << "OK shutting down" << std::endl;
      break;
    }
    bool quit = false;
    const std::string resp = core.handle_line(conn, line, &quit);
    if (!resp.empty()) std::cout << resp << std::endl;
    if (quit) break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Args args(argc, argv);
    const auto port = static_cast<std::uint16_t>(args.get_int(
        "port", 7433, "TCP port (0 = ephemeral; the banner names it)"));
    const std::string bind_addr = args.get_string(
        "bind", "127.0.0.1", "interface to bind");
    const bool stdio = args.get_bool(
        "stdio", false, "serve the protocol over stdin/stdout instead");
    const std::string tier_flag = args.get_string(
        "tier", "vm", "default execution tier: vm | tree | native");
    const int workers = static_cast<int>(args.get_int(
        "workers", 4, "default engine worker threads per session"));
    const auto queue_limit = static_cast<std::size_t>(args.get_int(
        "queue_limit", 64, "default admission-queue bound per session"));
    const double commit_window_ms = args.get_double(
        "commit_window_ms", 0,
        "default group-commit window: wait this long for more writers to "
        "join an epoch (0 = drain only what is queued)");
    const auto minmax_memo_k = static_cast<std::size_t>(args.get_int(
        "minmax_memo_k", 8,
        "default per-vertex k-best retraction memo capacity for min/max "
        "sites (0 = disabled; extremum deletions fall back cold)"));
    const std::string metrics_path = args.get_string(
        "metrics", "",
        "write merged serve metrics JSON here on shutdown");
    if (args.help_requested()) {
      std::cout << args.help();
      return 0;
    }
    args.check_unused();

    dv::serve::HostOptions defaults;
    defaults.session.run.tier = dv::parse_exec_tier(tier_flag);
    defaults.session.run.engine.num_workers = workers;
    defaults.session.minmax_memo_k = minmax_memo_k;
    defaults.queue_limit = queue_limit;
    defaults.commit_window_ms = commit_window_ms;

    if (stdio) return run_stdio(std::move(defaults));

    Daemon daemon(std::move(defaults), port, bind_addr);
    // The banner is the machine-readable contract: scripts using --port=0
    // parse the actual port out of this line.
    std::cout << "dv_serve listening on " << bind_addr << ":"
              << daemon.port() << std::endl;
    daemon.run();

    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      DV_CHECK_MSG(out.good(),
                   "cannot open --metrics path '" << metrics_path << "'");
      obs::write_metrics_json(
          dv::serve::merged_metrics(daemon.core().registry()), {}, out);
      std::cout << "wrote metrics to " << metrics_path << "\n";
    }
    std::cout << "dv_serve: shut down\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "dv_serve: " << e.what() << "\n";
    return 2;
  }
}
