// Streaming-epoch driver: keep a ΔV program converged across a stream of
// graph mutations, reporting per-epoch warm/cold costs.
//
//   dv_stream --program=cc --undirected --graph=edges.txt \
//             --mutations=stream.txt
//   dv_stream --file=my.dv --graph=edges.txt --param=source=0 \
//             --mutations=stream.txt --tier=tree
//
// The graph is a plain edge list (graph/edge_list_io.h); the mutation
// stream is the dv/streaming/mutation_io.h format: `+ u v [w]`, `- u v`,
// `addv n`, `delv v`, batches separated by `commit` or blank lines. Each
// batch becomes one epoch; the table shows whether the runtime resumed
// warm (Δ-patched accumulators, frontier-only wake-up) or fell back to a
// cold rebuild, and what either cost.

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "common/args.h"
#include "common/check.h"
#include "common/table.h"
#include "common/timer.h"
#include "dv/compiler.h"
#include "dv/programs/programs.h"
#include "dv/streaming/mutation_io.h"
#include "dv/streaming/stream_session.h"
#include "graph/edge_list_io.h"

namespace {

using namespace deltav;

const char* builtin_source(const std::string& name) {
  if (name == "pagerank") return dv::programs::kPageRank;
  if (name == "pagerank-ug") return dv::programs::kPageRankUndirected;
  if (name == "sssp") return dv::programs::kSssp;
  if (name == "cc") return dv::programs::kConnectedComponents;
  if (name == "hits") return dv::programs::kHits;
  if (name == "reachability") return dv::programs::kReachability;
  if (name == "maxgossip") return dv::programs::kMaxGossip;
  DV_FAIL("unknown built-in program '"
          << name
          << "' (try pagerank, pagerank-ug, sssp, cc, hits, reachability, "
             "maxgossip)");
}

std::map<std::string, dv::Value> parse_params(const std::string& spec) {
  std::map<std::string, dv::Value> params;
  std::istringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    DV_CHECK_MSG(eq != std::string::npos,
                 "--params expects name=value, got '" << item << "'");
    const std::string name = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (value.find('.') != std::string::npos) {
      params[name] = dv::Value::of_float(std::stod(value));
    } else {
      params[name] = dv::Value::of_int(std::stoll(value));
    }
  }
  return params;
}

std::string batch_summary(const graph::MutationBatch& b) {
  std::size_t ins = 0, del = 0;
  for (const auto& e : b.edges) (e.insert ? ins : del)++;
  std::ostringstream os;
  os << "+" << ins << " -" << del;
  if (b.add_vertices > 0) os << " addv " << b.add_vertices;
  if (!b.detach_vertices.empty()) os << " delv " << b.detach_vertices.size();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Args args(argc, argv);
    const std::string program =
        args.get_string("program", "", "built-in program name");
    const std::string file =
        args.get_string("file", "", "path to a ΔV source file");
    const std::string graph_path =
        args.get_string("graph", "", "edge-list file (src dst [weight])");
    const std::string mutations_path = args.get_string(
        "mutations", "", "mutation-stream file (mutation_io format)");
    const bool undirected =
        args.get_bool("undirected", false, "treat the edge list as undirected");
    const bool weighted =
        args.get_bool("weighted", false, "read edge weights");
    const std::string params_spec = args.get_string(
        "params", "", "program parameters, e.g. source=0,steps=30");
    const std::string tier_flag =
        args.get_string("tier", "vm", "execution tier: vm or tree");
    const int workers =
        static_cast<int>(args.get_int("workers", 4, "engine worker threads"));
    const bool force_cold = args.get_bool(
        "force_cold", false, "rebuild from scratch every epoch (baseline)");
    const double compact_threshold = args.get_double(
        "compact_threshold", 0.25,
        "fold the overlay into the base CSR above this overlay fraction");
    if (args.help_requested()) {
      std::cout << args.help();
      return 0;
    }
    args.check_unused();

    DV_CHECK_MSG(program.empty() != file.empty(),
                 "pass exactly one of --program or --file");
    DV_CHECK_MSG(!graph_path.empty(), "pass --graph=<edge list>");
    DV_CHECK_MSG(!mutations_path.empty(),
                 "pass --mutations=<mutation stream>");

    std::string source;
    if (!program.empty()) {
      source = builtin_source(program);
    } else {
      std::ifstream in(file);
      DV_CHECK_MSG(in.good(), "cannot open ΔV source '" << file << "'");
      std::ostringstream buf;
      buf << in.rdbuf();
      source = buf.str();
    }

    graph::EdgeListOptions gopts;
    gopts.directed = !undirected;
    gopts.weighted = weighted;
    graph::CsrGraph base = graph::read_edge_list_file(graph_path, gopts);
    const auto batches =
        dv::streaming::read_mutation_stream_file(mutations_path);
    DV_CHECK_MSG(!batches.empty(),
                 "mutation stream '" << mutations_path << "' is empty");

    const dv::CompiledProgram cp = dv::compile(source, {});
    dv::streaming::SessionOptions so;
    so.run.engine.num_workers = workers;
    so.run.tier = dv::parse_exec_tier(tier_flag);
    so.run.params = parse_params(params_spec);
    so.compact_threshold = compact_threshold;
    so.force_cold = force_cold;

    std::cout << "graph: " << base.num_vertices() << " vertices, "
              << base.num_logical_edges() << " edges ("
              << (undirected ? "undirected" : "directed") << ")\n";
    dv::streaming::DvStreamSession session(cp, std::move(base), so);
    Timer t0;
    const dv::DvRunResult first = session.converge();
    std::cout << "epoch 0 (cold converge): " << first.supersteps
              << " supersteps, " << first.stats.total_messages_sent()
              << " messages, " << t0.elapsed_seconds() << " s\n\n";

    Table t({"epoch", "batch", "mode", "supersteps", "msgs", "woken",
             "deltas", "wall(s)", "note"});
    std::size_t warm_count = 0;
    for (const graph::MutationBatch& b : batches) {
      Timer t1;
      const dv::streaming::SessionEpoch ep = session.apply(b);
      const double wall = t1.elapsed_seconds();
      warm_count += ep.warm ? 1 : 0;
      std::string note = ep.warm ? "" : ep.blocker;
      if (ep.compacted) note += note.empty() ? "compacted" : "; compacted";
      t.row()
          .cell(static_cast<unsigned long long>(ep.epoch))
          .cell(batch_summary(b))
          .cell(ep.warm ? "warm" : "cold")
          .cell(static_cast<unsigned long long>(ep.stats.supersteps))
          .cell(static_cast<unsigned long long>(ep.stats.messages))
          .cell(static_cast<unsigned long long>(ep.stats.woken))
          .cell(static_cast<unsigned long long>(ep.stats.deltas_applied))
          .cell(wall, 4)
          .cell(note);
    }
    t.print(std::cout);
    std::cout << "\n" << warm_count << "/" << batches.size()
              << " epochs resumed warm; final graph "
              << session.graph().num_vertices() << " vertices, "
              << session.graph().num_arcs() << " arcs\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "dv_stream: " << e.what() << "\n";
    return 2;
  }
}
