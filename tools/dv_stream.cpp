// Streaming-epoch driver: keep a ΔV program converged across a stream of
// graph mutations, reporting per-epoch warm/cold costs.
//
//   dv_stream --program=cc --undirected --graph=edges.txt
//             --mutations=stream.txt
//   dv_stream --file=my.dv --graph=edges.txt --param=source=0
//             --mutations=stream.txt --tier=tree
//
//   # checkpoint during long convergences, resume the stream later:
//   dv_stream --program=cc --undirected --graph=edges.txt
//             --mutations=head.txt --checkpoint_every=16
//             --checkpoint=ckpt.snap --save=done.snap
//   dv_stream --program=cc --restore=done.snap --mutations=tail.txt
//
// The graph is a plain edge list (graph/edge_list_io.h); the mutation
// stream is the dv/streaming/mutation_io.h format: `+ u v [w]`, `- u v`,
// `addv n`, `delv v`, batches separated by `commit` or blank lines. Each
// batch becomes one epoch; the table shows whether the runtime resumed
// warm (Δ-patched accumulators, frontier-only wake-up) or fell back to a
// cold rebuild, and what either cost.
//
// --restore rebuilds the session from a snapshot (the graph comes from
// the snapshot, so --graph is not needed) and applies --mutations as the
// remaining stream; a snapshot taken mid-convergence resumes the
// interrupted run first. A damaged snapshot fails with the detected
// reason — restore never silently decodes a torn file. --json writes one
// row per epoch in the bench_stream JSON schema.

#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/check.h"
#include "common/table.h"
#include "common/timer.h"
#include "dv/compiler.h"
#include "dv/obs/report.h"
#include "dv/persist/snapshot.h"
#include "dv/programs/programs.h"
#include "dv/streaming/mutation_io.h"
#include "dv/streaming/stream_session.h"
#include "graph/edge_list_io.h"

namespace {

using namespace deltav;

const char* builtin_source(const std::string& name) {
  if (name == "pagerank") return dv::programs::kPageRank;
  if (name == "pagerank-ug") return dv::programs::kPageRankUndirected;
  if (name == "sssp") return dv::programs::kSssp;
  if (name == "sssp_retract") return dv::programs::kSsspRetract;
  if (name == "cc") return dv::programs::kConnectedComponents;
  if (name == "hits") return dv::programs::kHits;
  if (name == "reachability") return dv::programs::kReachability;
  if (name == "maxgossip") return dv::programs::kMaxGossip;
  if (name == "bfs") return dv::programs::kBfs;
  if (name == "kcore") return dv::programs::kKCore;
  if (name == "mis") return dv::programs::kMis;
  if (name == "pointerjump") return dv::programs::kPointerJump;
  DV_FAIL("unknown built-in program '"
          << name
          << "' (try pagerank, pagerank-ug, sssp, sssp_retract, cc, hits, "
             "reachability, maxgossip, bfs, kcore, mis, pointerjump)");
}

std::map<std::string, dv::Value> parse_params(const std::string& spec) {
  std::map<std::string, dv::Value> params;
  std::istringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    DV_CHECK_MSG(eq != std::string::npos,
                 "--params expects name=value, got '" << item << "'");
    const std::string name = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (value.find('.') != std::string::npos) {
      params[name] = dv::Value::of_float(std::stod(value));
    } else {
      params[name] = dv::Value::of_int(std::stoll(value));
    }
  }
  return params;
}

std::string batch_summary(const graph::MutationBatch& b) {
  std::size_t ins = 0, del = 0;
  for (const auto& e : b.edges) (e.insert ? ins : del)++;
  std::ostringstream os;
  os << "+" << ins << " -" << del;
  if (b.add_vertices > 0) os << " addv " << b.add_vertices;
  if (!b.detach_vertices.empty()) os << " delv " << b.detach_vertices.size();
  return os.str();
}

/// bench_stream's JSON schema (bench/bench_common.h JsonReport): the same
/// row keys, so CI tooling can consume either file; `epoch` is an added
/// field (the schema contract allows additions, never renames).
class EpochJson {
 public:
  void set_path(std::string path) { path_ = std::move(path); }
  bool enabled() const { return !path_.empty(); }

  void add(std::size_t epoch, const std::string& graph,
           const std::string& algo, const std::string& system,
           const std::string& tier, double wall_seconds,
           std::uint64_t messages, std::size_t supersteps,
           std::size_t state_bytes, bool warm, const std::string& blocker,
           const std::string& fold, std::size_t minmax_memo_k) {
    if (enabled())
      rows_.push_back(Row{epoch, graph, algo, system, tier, wall_seconds,
                          messages, supersteps, state_bytes, warm, blocker,
                          fold, minmax_memo_k});
  }

  void write() const {
    if (!enabled()) return;
    std::ofstream out(path_);
    DV_CHECK_MSG(out.good(), "cannot open --json path '" << path_ << "'");
    out << "{\n  \"bench\": \"dv_stream\",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      out << (i ? ",\n" : "\n")
          << "    {\"graph\": \"" << r.graph << "\", \"algorithm\": \""
          << r.algo << "\", \"system\": \"" << r.system
          << "\", \"tier\": \"" << r.tier << "\", \"wall_seconds\": "
          << std::setprecision(6) << r.wall_seconds
          << ", \"sim_seconds\": 0, \"messages\": " << r.messages
          << ", \"bytes\": 0, \"supersteps\": " << r.supersteps
          << ", \"state_bytes\": " << r.state_bytes
          << ", \"epoch\": " << r.epoch
          << ", \"warm\": " << (r.warm ? "true" : "false")
          << ", \"blocker\": \"" << r.blocker
          << "\", \"fold_path\": \"" << r.fold
          << "\", \"minmax_memo_k\": " << r.minmax_memo_k << "}";
    }
    out << "\n  ]\n}\n";
    DV_CHECK_MSG(out.good(), "failed writing --json path '" << path_ << "'");
    std::cout << "wrote " << rows_.size() << " rows to " << path_ << "\n";
  }

 private:
  struct Row {
    std::size_t epoch;
    std::string graph, algo, system, tier;
    double wall_seconds;
    std::uint64_t messages;
    std::size_t supersteps;
    std::size_t state_bytes;
    bool warm;
    std::string blocker;  // cold-fallback reason; "" when warm
    std::string fold;     // "atomic" | "buffered": which Δ-send fold path
                          // this epoch actually ran
    std::size_t minmax_memo_k;  // retraction-memo capacity the session ran
                                // with (0 = memos disabled)
  };
  std::string path_;
  std::vector<Row> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  try {
    Args args(argc, argv);
    const std::string program =
        args.get_string("program", "", "built-in program name");
    const std::string file =
        args.get_string("file", "", "path to a ΔV source file");
    const std::string graph_path =
        args.get_string("graph", "", "edge-list file (src dst [weight])");
    const std::string mutations_path = args.get_string(
        "mutations", "", "mutation-stream file (mutation_io format)");
    const bool undirected =
        args.get_bool("undirected", false, "treat the edge list as undirected");
    const bool weighted =
        args.get_bool("weighted", false, "read edge weights");
    const std::string params_spec = args.get_string(
        "params", "", "program parameters, e.g. source=0,steps=30");
    const std::string tier_flag = args.get_string(
        "tier", "vm", "execution tier: vm | tree | native");
    const double epsilon = args.get_double(
        "epsilon", 0.0,
        "ε-slop for §6.3 change checks (0 = exact change detection)");
    const std::string fold_flag = args.get_string(
        "fold_path", "auto",
        "Δ-send fold path: auto (atomic where proven commutative), "
        "buffered, or atomic");
    const bool atomic_float = args.get_bool(
        "atomic_float", false,
        "admit float + aggregations to the atomic fold path (ε-close, "
        "not bit-exact: concurrent fetch order re-associates the sum)");
    const int workers =
        static_cast<int>(args.get_int("workers", 4, "engine worker threads"));
    const bool force_cold = args.get_bool(
        "force_cold", false, "rebuild from scratch every epoch (baseline)");
    const double compact_threshold = args.get_double(
        "compact_threshold", 0.25,
        "fold the overlay into the base CSR above this overlay fraction");
    const auto minmax_memo_k = static_cast<std::size_t>(args.get_int(
        "minmax_memo_k", 8,
        "per-vertex k-best retraction memo capacity for min/max "
        "aggregation sites (DESIGN.md §11); 0 disables the memos and "
        "restores the legacy cold-fallback on extremum deletions"));
    const auto checkpoint_every = static_cast<std::size_t>(args.get_int(
        "checkpoint_every", 0,
        "checkpoint every K supersteps during convergence (0 = off)"));
    const std::string checkpoint_path = args.get_string(
        "checkpoint", "", "checkpoint snapshot path (atomic tmp+rename)");
    const std::string restore_path = args.get_string(
        "restore", "",
        "resume from a snapshot instead of --graph; --mutations is the "
        "remaining stream");
    const std::string save_path = args.get_string(
        "save", "", "write a final session snapshot here on exit");
    EpochJson json;
    json.set_path(args.get_string(
        "json", "", "write per-epoch JSON rows here (bench_stream schema)"));
    obs::ReportOptions obs_opts;
    obs_opts.metrics_path = args.get_string(
        "metrics", "", "write a metrics JSON document here on exit");
    obs_opts.trace_path = args.get_string(
        "trace", "", "write a span trace here (chrome://tracing / Perfetto)");
    obs_opts.trace_format = args.get_string(
        "trace_format", "chrome", "trace file format: chrome or jsonl");
    if (args.help_requested()) {
      std::cout << args.help();
      return 0;
    }
    args.check_unused();

    // Inert (no collector, null fast paths everywhere) unless --metrics
    // or --trace was passed; installs the collector globally so the
    // session's engine/runner/VM pick it up without explicit plumbing.
    obs::ObsSession obs(obs_opts);
    const auto obs_snapshot = [&] {
      return obs.enabled() ? obs.collector()->metrics.snapshot()
                           : obs::MetricsRegistry::Snapshot{};
    };
    const auto obs_epoch = [&](std::size_t epoch, bool warm,
                               const std::string& blocker,
                               const obs::MetricsRegistry::Snapshot& before) {
      if (!obs.enabled()) return;
      obs::EpochMetrics em;
      em.epoch = epoch;
      em.warm = warm;
      em.blocker = blocker;
      em.counters = obs::counter_diff(before, obs_snapshot());
      obs.add_epoch(std::move(em));
    };

    DV_CHECK_MSG(program.empty() != file.empty(),
                 "pass exactly one of --program or --file");
    DV_CHECK_MSG(!restore_path.empty() || !graph_path.empty(),
                 "pass --graph, --restore, or both (--graph is the cold "
                 "fallback when the snapshot is rejected)");
    DV_CHECK_MSG(!mutations_path.empty(),
                 "pass --mutations=<mutation stream>");
    DV_CHECK_MSG(checkpoint_every == 0 || !checkpoint_path.empty(),
                 "--checkpoint_every needs --checkpoint=<path>");

    std::string source;
    std::string algo;
    if (!program.empty()) {
      source = builtin_source(program);
      algo = program;
    } else {
      std::ifstream in(file);
      DV_CHECK_MSG(in.good(), "cannot open ΔV source '" << file << "'");
      std::ostringstream buf;
      buf << in.rdbuf();
      source = buf.str();
      algo = file;
    }

    const auto batches =
        dv::streaming::read_mutation_stream_file(mutations_path);
    DV_CHECK_MSG(!batches.empty(),
                 "mutation stream '" << mutations_path << "' is empty");

    dv::CompileOptions copts;
    copts.epsilon = epsilon;
    const dv::CompiledProgram cp = dv::compile(source, copts);
    dv::streaming::SessionOptions so;
    so.run.engine.num_workers = workers;
    so.run.tier = dv::parse_exec_tier(tier_flag);
    so.run.params = parse_params(params_spec);
    so.run.fold_path = dv::parse_fold_path(fold_flag);
    so.run.atomic_float = atomic_float;
    so.compact_threshold = compact_threshold;
    so.minmax_memo_k = minmax_memo_k;
    so.force_cold = force_cold;
    so.checkpoint_every = checkpoint_every;
    so.checkpoint_path = checkpoint_path;
    const std::string tier_name = dv::exec_tier_name(so.run.tier);

    std::unique_ptr<dv::streaming::DvStreamSession> session;
    if (!restore_path.empty()) {
      try {
        session =
            dv::streaming::DvStreamSession::restore(cp, restore_path, so);
      } catch (const dv::persist::SnapshotError& e) {
        // A torn or mismatched snapshot is detected, never decoded; with
        // --graph we rebuild cold instead of aborting.
        std::cerr << "restore of '" << restore_path
                  << "' rejected: " << e.what() << "\n";
        if (graph_path.empty()) return 2;
        std::cerr << "falling back to a cold rebuild from --graph\n";
      }
    }
    if (session) {
      std::cout << "restored '" << restore_path << "': epoch "
                << session->epoch() << ", "
                << session->graph().num_vertices() << " vertices, "
                << session->graph().num_arcs() << " arcs"
                << (session->converged() ? "" : " (mid-convergence)")
                << "\n";
      if (!session->converged()) {
        const auto before = obs_snapshot();
        Timer t0;
        const dv::DvRunResult r = session->converge();
        std::cout << "resumed convergence: " << r.supersteps
                  << " total supersteps, " << t0.elapsed_seconds() << " s\n";
        obs_epoch(session->epoch(), false, "resumed interrupted convergence",
                  before);
      }
    } else {
      graph::EdgeListOptions gopts;
      gopts.directed = !undirected;
      gopts.weighted = weighted;
      graph::CsrGraph base = graph::read_edge_list_file(graph_path, gopts);
      std::cout << "graph: " << base.num_vertices() << " vertices, "
                << base.num_logical_edges() << " edges ("
                << (undirected ? "undirected" : "directed") << ")\n";
      session =
          dv::streaming::make_stream_session(cp, std::move(base), so);
      const auto before = obs_snapshot();
      Timer t0;
      const dv::DvRunResult first = session->converge();
      std::cout << "epoch 0 (cold converge): " << first.supersteps
                << " supersteps, " << first.stats.total_messages_sent()
                << " messages, " << t0.elapsed_seconds() << " s\n";
      json.add(0, "edge-list", algo, "cold", tier_name, t0.elapsed_seconds(),
               first.stats.total_messages_sent(), first.supersteps,
               cp.state_bytes(), false, "initial convergence",
               session->atomic_path() ? "atomic" : "buffered",
               minmax_memo_k);
      obs_epoch(0, false, "initial convergence", before);
    }
    std::cout << "\n";

    Table t({"epoch", "batch", "mode", "fold", "supersteps", "msgs",
             "woken", "deltas", "wall(s)", "note"});
    std::size_t warm_count = 0;
    for (const graph::MutationBatch& b : batches) {
      const auto before = obs_snapshot();
      Timer t1;
      const dv::streaming::SessionEpoch ep = session->apply(b);
      const double wall = t1.elapsed_seconds();
      warm_count += ep.warm ? 1 : 0;
      // Warm epochs print "-" (not blank) in the note column so every row
      // has a visible reason cell and column alignment is greppable.
      std::string note = ep.warm ? "-" : ep.blocker;
      if (ep.compacted) note += "; compacted";
      const char* fold = ep.stats.atomic_path ? "atomic" : "buffered";
      t.row()
          .cell(static_cast<unsigned long long>(ep.epoch))
          .cell(batch_summary(b))
          .cell(ep.warm ? "warm" : "cold")
          .cell(fold)
          .cell(static_cast<unsigned long long>(ep.stats.supersteps))
          .cell(static_cast<unsigned long long>(ep.stats.messages))
          .cell(static_cast<unsigned long long>(ep.stats.woken))
          .cell(static_cast<unsigned long long>(ep.stats.deltas_applied))
          .cell(wall, 4)
          .cell(note);
      const std::string blocker = ep.blocker ? ep.blocker : "";
      json.add(ep.epoch, "edge-list", algo, ep.warm ? "warm" : "cold",
               tier_name, wall, ep.stats.messages, ep.stats.supersteps,
               cp.state_bytes(), ep.warm, blocker, fold, minmax_memo_k);
      obs_epoch(ep.epoch, ep.warm, blocker, before);
    }
    t.print(std::cout);
    std::cout << "\n" << warm_count << "/" << batches.size()
              << " epochs resumed warm; final graph "
              << session->graph().num_vertices() << " vertices, "
              << session->graph().num_arcs() << " arcs\n";
    if (!save_path.empty()) {
      session->save(save_path);
      std::cout << "saved session snapshot to " << save_path << "\n";
    }
    json.write();
    if (obs.enabled()) {
      obs.flush();
      if (!obs_opts.metrics_path.empty())
        std::cout << "wrote metrics to " << obs_opts.metrics_path << "\n";
      if (!obs_opts.trace_path.empty())
        std::cout << "wrote trace to " << obs_opts.trace_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "dv_stream: " << e.what() << "\n";
    return 2;
  }
}
