// Long-soak differential fuzzer for the ΔV compiler pipeline.
//
//   dv_fuzz --seed=1 --programs=10000            # soak
//   dv_fuzz --seed=1 --programs=10000 --save     # persist reduced failures
//   dv_fuzz --replay=tests/corpus                # re-run saved failures
//   dv_fuzz --stream --programs=500              # streaming-epoch tier:
//                                                # (program, graph, mutation
//                                                # stream) triples, warm
//                                                # sessions vs ΔV* rebuilds
//   dv_fuzz --persist --programs=300             # persistence tier: the same
//                                                # triples swept over snapshot
//                                                # kill-points — bit-exact
//                                                # restores, corrupted
//                                                # snapshots always detected
//   dv_fuzz --remote --programs=300              # remote-read tier: bounded
//                                                # remote(u).f programs; the
//                                                # request/reply lowering held
//                                                # bit-exact against the
//                                                # reference interpretation,
//                                                # across tiers and variants
//
// Each program is generated from an independent split of the base seed, so
// any failure reproduces from (--seed, reported index) alone. Failures are
// greedily reduced (same failing check, smaller program/graph) before being
// reported or saved.

#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>

#include "common/args.h"
#include "common/rng.h"
#include "dv/codegen/native_module.h"
#include "dv/obs/report.h"
#include "dv/testing/corpus.h"
#include "dv/testing/differential.h"
#include "dv/testing/program_gen.h"
#include "dv/testing/reducer.h"
#include "dv/testing/persist_check.h"
#include "dv/testing/remote_gen.h"
#include "dv/testing/stream_gen.h"

namespace {

using namespace deltav;
using namespace deltav::dv::testing;

/// One line saying the native axis was skipped on `cases` cases (nothing
/// when the axis actually ran or was turned off by flag).
void report_native_skip(const DiffOptions& opts, long long cases) {
  if (!opts.check_native) return;
  const std::string& reason = dv::native::native_unavailable_reason();
  if (reason.empty()) return;
  std::printf("native axis skipped on %lld cases: %s\n", cases,
              reason.c_str());
}

int replay_corpus(const std::string& dir, const DiffOptions& opts) {
  // An empty directory is a legitimate corpus (no outstanding
  // regressions); a missing one is a typo'd path that must not read as
  // a clean replay.
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    std::fprintf(stderr, "error: corpus %s is not a directory\n",
                 dir.c_str());
    return 2;
  }
  const auto entries = load_corpus_dir(dir);
  if (entries.empty()) {
    std::printf("corpus %s: no entries\n", dir.c_str());
    return 0;
  }
  int failures = 0;
  for (const auto& [path, fc] : entries) {
    const auto fail = check_case(fc, opts);
    if (fail) {
      ++failures;
      std::printf("FAIL %s [%s] %s\n", path.c_str(), fail->check.c_str(),
                  fail->detail.c_str());
    } else {
      std::printf("ok   %s\n", path.c_str());
    }
  }
  report_native_skip(opts, static_cast<long long>(entries.size()));
  std::printf("%zu entries, %d failing\n", entries.size(), failures);
  return failures == 0 ? 0 : 1;
}

int stream_soak(std::uint64_t seed, std::int64_t cases,
                std::int64_t max_failures, bool verbose,
                const StreamDiffOptions& opts) {
  Rng rng(seed);
  std::int64_t failures = 0, warm_cases = 0;
  for (std::int64_t k = 0; k < cases; ++k) {
    Rng crng = rng.split();
    const StreamCase sc = generate_stream_case(crng);
    warm_cases += sc.expect_warm ? 1 : 0;
    if (verbose)
      std::printf("--- case %lld\n%s", (long long)k, describe(sc).c_str());
    const auto fail = check_stream_case(sc, opts);
    if (!fail) continue;
    ++failures;
    std::printf("FAIL case %lld seed %llu [%s] %s\n%s", (long long)k,
                (unsigned long long)seed, fail->check.c_str(),
                fail->detail.c_str(), describe(sc).c_str());
    if (failures >= max_failures) {
      std::printf("stopping after %lld failures\n", (long long)failures);
      break;
    }
  }
  std::printf("%lld stream cases (%lld warm-family), %lld failing\n",
              (long long)cases, (long long)warm_cases, (long long)failures);
  return failures == 0 ? 0 : 1;
}

int remote_soak(std::uint64_t seed, std::int64_t cases,
                std::int64_t max_failures, bool verbose,
                const RemoteDiffOptions& opts) {
  Rng rng(seed);
  std::int64_t failures = 0;
  for (std::int64_t k = 0; k < cases; ++k) {
    Rng crng = rng.split();
    const RemoteCase rc = generate_remote_case(crng);
    if (verbose)
      std::printf("--- case %lld (graph %s)\n%s", (long long)k,
                  rc.graph.describe().c_str(), rc.source.c_str());
    const auto fail = check_remote_case(rc, opts);
    if (!fail) continue;
    ++failures;
    std::printf("FAIL case %lld seed %llu [%s] %s\ngraph %s:\n%s",
                (long long)k, (unsigned long long)seed, fail->check.c_str(),
                fail->detail.c_str(), rc.graph.describe().c_str(),
                rc.source.c_str());
    if (failures >= max_failures) {
      std::printf("stopping after %lld failures\n", (long long)failures);
      break;
    }
  }
  std::printf("%lld remote cases, %lld failing\n", (long long)cases,
              (long long)failures);
  return failures == 0 ? 0 : 1;
}

int persist_soak(std::uint64_t seed, std::int64_t cases,
                 std::int64_t max_failures, bool verbose,
                 const PersistCheckOptions& opts) {
  Rng rng(seed);
  std::int64_t failures = 0;
  for (std::int64_t k = 0; k < cases; ++k) {
    Rng crng = rng.split();
    const StreamCase sc = generate_stream_case(crng);
    if (verbose)
      std::printf("--- case %lld\n%s", (long long)k, describe(sc).c_str());
    const auto fail = check_persist_case(sc, crng, opts);
    if (!fail) continue;
    ++failures;
    std::printf("FAIL case %lld seed %llu [%s] %s\n%s", (long long)k,
                (unsigned long long)seed, fail->check.c_str(),
                fail->detail.c_str(), describe(sc).c_str());
    if (failures >= max_failures) {
      std::printf("stopping after %lld failures\n", (long long)failures);
      break;
    }
  }
  std::printf("%lld persist cases, %lld failing\n", (long long)cases,
              (long long)failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Args args(argc, argv);
    const auto seed = static_cast<std::uint64_t>(
        args.get_int("seed", 1, "base seed; each program splits from it"));
    const auto programs =
        args.get_int("programs", 1000, "number of programs to generate");
    const std::string corpus_dir = args.get_string(
        "corpus", "tests/corpus", "directory for saved failures");
    const bool save =
        args.get_bool("save", false, "save reduced failures to --corpus");
    const bool reduce =
        args.get_bool("reduce", true, "greedily shrink failing cases");
    const std::string replay = args.get_string(
        "replay", "", "replay a corpus directory instead of fuzzing");
    const bool stream = args.get_bool(
        "stream", false,
        "fuzz streaming epochs: mutation streams through warm sessions, "
        "cross-checked per batch against from-scratch ΔV* runs");
    const bool persist = args.get_bool(
        "persist", false,
        "fuzz session persistence: snapshot kill-point sweeps over stream "
        "triples — bit-exact restore-equivalence, fault detection");
    const bool remote = args.get_bool(
        "remote", false,
        "fuzz remote reads: bounded remote(u).f programs, the request/reply "
        "lowering held bit-exact against the reference interpretation");
    const auto workers = args.get_int(
        "workers", 4, "engine worker count for the stream/persist tiers");
    const bool verbose =
        args.get_bool("verbose", false, "print every generated program");
    const auto max_failures = args.get_int(
        "max_failures", 10, "stop after this many distinct failures");
    DiffOptions diff;
    diff.float_tol =
        args.get_double("tolerance", diff.float_tol, "float comparison tol");
    const bool fold_path = args.get_bool(
        "fold_path", true,
        "fold-path axis: cross-check the lock-free atomic path against "
        "the buffered oracle on every case (classic and stream tiers)");
    diff.check_fold_path = fold_path;
    diff.check_native = args.get_bool(
        "native", true,
        "native axis: AOT-compile both variants and hold them bit-exact "
        "against the VM; skipped (with a note) without a host compiler");
    obs::ReportOptions obs_opts;
    obs_opts.metrics_path = args.get_string(
        "metrics", "", "write an aggregate metrics JSON document on exit");
    obs_opts.trace_path = args.get_string(
        "trace", "", "write a span trace here (chrome://tracing / Perfetto)");
    obs_opts.trace_format = args.get_string(
        "trace_format", "chrome", "trace file format: chrome or jsonl");
    if (args.help_requested()) {
      std::printf("%s", args.help().c_str());
      return 0;
    }
    args.check_unused();

    // Inert by default: the differential contract (bit-exact tier
    // equivalence) is routinely soaked with no collector installed, and
    // counting must never perturb results — installing one only adds
    // bookkeeping, both tiers' runs land in the same registry.
    obs::ObsSession obs(obs_opts);

    if (!replay.empty()) return replay_corpus(replay, diff);
    if (remote) {
      RemoteDiffOptions ropts;
      return remote_soak(seed, programs, max_failures, verbose, ropts);
    }
    if (persist) {
      PersistCheckOptions popts;
      popts.workers = static_cast<int>(workers);
      return persist_soak(seed, programs, max_failures, verbose, popts);
    }
    if (stream) {
      StreamDiffOptions sopts;
      sopts.float_tol = diff.float_tol;
      sopts.workers = static_cast<int>(workers);
      sopts.check_fold_path = fold_path;
      return stream_soak(seed, programs, max_failures, verbose, sopts);
    }

    Rng rng(seed);
    GenOptions gen;
    std::int64_t failures = 0;
    for (std::int64_t k = 0; k < programs; ++k) {
      Rng prng = rng.split();
      const ProgramSpec spec = generate_spec(prng, gen);
      const GraphSpec gspec = random_graph_spec(prng, spec, gen);
      const FuzzCase fc = make_case(spec, gspec);
      if (verbose)
        std::printf("--- program %lld (graph %s)\n%s", (long long)k,
                    gspec.describe().c_str(), fc.source.c_str());
      const auto fail = check_case(fc, diff);
      if (!fail) continue;

      ++failures;
      std::printf("FAIL program %lld seed %llu [%s] %s\n", (long long)k,
                  (unsigned long long)seed, fail->check.c_str(),
                  fail->detail.c_str());
      FuzzCase to_report = fc;
      if (reduce) {
        const std::string kind = fail->check;
        const auto reduced = reduce_case(
            spec, gspec, fc.worker_counts,
            [&](const FuzzCase& candidate) {
              const auto f = check_case(candidate, diff);
              return f && f->check == kind;
            });
        to_report =
            make_case(reduced.spec, reduced.graph, reduced.workers);
        std::printf("reduced (%d attempts) to graph %s:\n%s",
                    reduced.attempts, reduced.graph.describe().c_str(),
                    to_report.source.c_str());
      } else {
        std::printf("graph %s:\n%s", gspec.describe().c_str(),
                    fc.source.c_str());
      }
      if (save) {
        const std::string note =
            "[" + fail->check + "] " + fail->detail + " (seed " +
            std::to_string(seed) + " program " + std::to_string(k) + ")";
        const std::string path = save_case(corpus_dir, to_report, note);
        std::printf("saved %s\n", path.c_str());
      }
      if (failures >= max_failures) {
        std::printf("stopping after %lld failures\n", (long long)failures);
        break;
      }
    }
    report_native_skip(diff, (long long)programs);
    std::printf("%lld programs, %lld failing\n", (long long)programs,
                (long long)failures);
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dv_fuzz: %s\n", e.what());
    return 2;
  }
}
