// Structural post-condition tests for each §6 transformation pass.
#include <gtest/gtest.h>

#include <functional>

#include "dv/compiler.h"
#include "dv/lexer.h"
#include "dv/parser.h"
#include "dv/passes/passes.h"
#include "dv/programs/programs.h"

namespace deltav::dv {
namespace {

Program front_end(const std::string& src, Diagnostics& diags) {
  return parse_and_check(src, diags);
}

/// Walks all statement bodies.
void walk(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  for (const auto& k : e.kids) walk(*k, fn);
}

int count_kind(const Program& p, ExprKind kind) {
  int n = 0;
  for (const auto& s : p.stmts)
    walk(*s.body, [&](const Expr& e) { n += e.kind == kind; });
  return n;
}

const char* kSimpleSum =
    "init { local a : float = 1.0; local b : float = 0.0 };"
    "iter i { b = + [ u.a | u <- #in ]; a = b * 0.5 } until { i >= 3 }";

// ------------------------------------------------------------ A-normalize

TEST(Anormalize, HoistsBuriedAggregation) {
  Diagnostics diags;
  auto p = front_end(
      "init { local a : float = 1.0 };"
      "step { a = 1.0 + + [ u.a | u <- #in ] }",
      diags);
  pass_anormalize(p, diags);
  // The aggregation now sits in a canonical position: RHS of a scratch
  // assignment, with the original expression reading the scratch var.
  bool found_canonical = false;
  walk(*p.stmts[0].body, [&](const Expr& e) {
    if (e.kind == ExprKind::kAssign && !e.kids.empty() &&
        e.kids[0]->kind == ExprKind::kAgg)
      found_canonical = true;
  });
  EXPECT_TRUE(found_canonical);
  EXPECT_EQ(p.scratch.size(), 1u);
  // No aggregation remains in a non-canonical position.
  walk(*p.stmts[0].body, [&](const Expr& e) {
    if (e.kind == ExprKind::kBinary) {
      for (const auto& k : e.kids) EXPECT_NE(k->kind, ExprKind::kAgg);
    }
  });
}

TEST(Anormalize, CanonicalAggregationLeftAlone) {
  Diagnostics diags;
  auto p = front_end(kSimpleSum, diags);
  pass_anormalize(p, diags);
  EXPECT_EQ(p.scratch.size(), 0u);  // already canonical; nothing hoisted
}

TEST(Anormalize, AggregationInLetValueLeftAlone) {
  Diagnostics diags;
  auto p = front_end(
      "init { local a : float = 1.0 };"
      "step { let s : float = + [ u.a | u <- #in ] in a = s }",
      diags);
  const auto lets_before = p.scratch.size();  // let binding slot
  pass_anormalize(p, diags);
  EXPECT_EQ(p.scratch.size(), lets_before);
}

// ------------------------------------------------- aggregation conversion

TEST(AggregationConversion, RegistersSiteWithSenderView) {
  Diagnostics diags;
  auto p = front_end(kSimpleSum, diags);
  pass_anormalize(p, diags);
  pass_aggregation_conversion(p, diags);
  ASSERT_EQ(p.sites.size(), 1u);
  const AggSite& site = p.sites[0];
  EXPECT_EQ(site.op, AggOp::kSum);
  EXPECT_EQ(site.pull_dir, GraphDir::kIn);
  EXPECT_EQ(site.stmt_index, 0);
  // Sender view: u.a became a read of the sender's own field a (slot 0).
  ASSERT_EQ(site.send_expr->kind, ExprKind::kFieldRef);
  EXPECT_EQ(site.send_expr->slot, 0);
  ASSERT_EQ(site.dep_fields.size(), 1u);
  EXPECT_EQ(site.dep_fields[0], 0);
}

TEST(AggregationConversion, ReplacesAggWithFoldAndAppendsSendLoop) {
  Diagnostics diags;
  auto p = front_end(kSimpleSum, diags);
  pass_anormalize(p, diags);
  pass_aggregation_conversion(p, diags);
  EXPECT_EQ(count_kind(p, ExprKind::kAgg), 0);
  EXPECT_EQ(count_kind(p, ExprKind::kFoldMessages), 1);
  EXPECT_EQ(count_kind(p, ExprKind::kSendLoop), 1);
  // Pull from #in → push along #out.
  walk(*p.stmts[0].body, [&](const Expr& e) {
    if (e.kind == ExprKind::kSendLoop) {
      EXPECT_EQ(e.dir, GraphDir::kOut);
      EXPECT_FALSE(e.flag);  // full values until §6.5
    }
    if (e.kind == ExprKind::kFoldMessages) {
      EXPECT_FALSE(e.flag);
    }
  });
}

TEST(AggregationConversion, PushDirectionTable) {
  EXPECT_EQ(push_direction(GraphDir::kIn), GraphDir::kOut);
  EXPECT_EQ(push_direction(GraphDir::kOut), GraphDir::kIn);
  EXPECT_EQ(push_direction(GraphDir::kNeighbors), GraphDir::kNeighbors);
}

TEST(AggregationConversion, MultipleSitesNumbered) {
  Diagnostics diags;
  auto p = front_end(programs::kHits, diags);
  pass_anormalize(p, diags);
  pass_aggregation_conversion(p, diags);
  ASSERT_EQ(p.sites.size(), 2u);
  EXPECT_EQ(p.sites[0].id, 0);
  EXPECT_EQ(p.sites[1].id, 1);
  EXPECT_EQ(count_kind(p, ExprKind::kSendLoop), 2);
}

TEST(AggregationConversion, WarnsOnConstantElement) {
  Diagnostics diags;
  auto p = front_end(
      "init { local a : float = 0.0 };"
      "step { a = + [ 1.0 | u <- #in ] }",
      diags);
  pass_anormalize(p, diags);
  pass_aggregation_conversion(p, diags);
  EXPECT_TRUE(diags.has_warning_containing("reads no vertex fields"));
}

// ------------------------------------------------------------ §6.2 binding

TEST(StateBinding, PlainFieldNeedsNoBinding) {
  Diagnostics diags;
  auto p = front_end(kSimpleSum, diags);
  pass_anormalize(p, diags);
  pass_aggregation_conversion(p, diags);
  const auto fields_before = p.fields.size();
  pass_state_binding(p, diags);
  EXPECT_EQ(p.fields.size(), fields_before);
  EXPECT_EQ(p.sites[0].bound_field, -1);
}

TEST(StateBinding, ExpressionPayloadGetsBoundField) {
  Diagnostics diags;
  auto p = front_end(
      "init { local a : float = 1.0; local b : float = 0.0 };"
      "iter i { b = + [ u.a * 2.0 | u <- #in ]; a = b } until { i >= 2 }",
      diags);
  pass_anormalize(p, diags);
  pass_aggregation_conversion(p, diags);
  pass_state_binding(p, diags);
  const AggSite& site = p.sites[0];
  EXPECT_GE(site.bound_field, 0);
  EXPECT_EQ(p.fields[static_cast<std::size_t>(site.bound_field)].origin,
            Field::Origin::kSentBinding);
  // Eq. 4: the send loop now transmits the bound field, and an assignment
  // to it precedes the loop.
  EXPECT_EQ(site.send_expr->kind, ExprKind::kFieldRef);
  EXPECT_EQ(site.send_expr->slot, site.bound_field);
  ASSERT_NE(site.init_send_expr, nullptr);
  bool bind_before_loop = false;
  bool seen_bind = false;
  for (const auto& kid : p.stmts[0].body->kids) {
    if (kid->kind == ExprKind::kAssign && kid->slot == site.bound_field)
      seen_bind = true;
    if (kid->kind == ExprKind::kSendLoop) bind_before_loop = seen_bind;
  }
  EXPECT_TRUE(bind_before_loop);
}

TEST(StateBinding, EdgeDependentPayloadLeftInPlace) {
  Diagnostics diags;
  auto p = front_end(programs::kSssp, diags);
  pass_anormalize(p, diags);
  pass_aggregation_conversion(p, diags);
  pass_state_binding(p, diags);
  EXPECT_EQ(p.sites[0].bound_field, -1);
  EXPECT_TRUE(diags.has_warning_containing("connecting edge"));
}

// ----------------------------------------------------- ΔV* send policy

TEST(AssignedSendPolicy, GuardsLoopAndFlagsAssignments) {
  Diagnostics diags;
  auto p = front_end(kSimpleSum, diags);
  pass_anormalize(p, diags);
  pass_aggregation_conversion(p, diags);
  pass_state_binding(p, diags);
  pass_assigned_send_policy(p, diags);
  const AggSite& site = p.sites[0];
  EXPECT_GE(site.assigned_scratch, 0);
  EXPECT_EQ(p.scratch[static_cast<std::size_t>(site.assigned_scratch)]
                .origin,
            ScratchVar::Origin::kAssignedFlag);
  // The send loop is now under an if whose condition reads the flag.
  bool guarded = false;
  walk(*p.stmts[0].body, [&](const Expr& e) {
    if (e.kind == ExprKind::kIf && e.kids.size() == 2 &&
        e.kids[0]->kind == ExprKind::kScratchRef &&
        e.kids[0]->slot == site.assigned_scratch &&
        e.kids[1]->kind == ExprKind::kSendLoop)
      guarded = true;
  });
  EXPECT_TRUE(guarded);
}

// ------------------------------------------------------- §6.3 change checks

TEST(ChangeChecks, AddsOldCopiesDirtyFlagAndGuards) {
  Diagnostics diags;
  auto p = front_end(kSimpleSum, diags);
  pass_anormalize(p, diags);
  pass_aggregation_conversion(p, diags);
  pass_state_binding(p, diags);
  pass_change_checks(p, CompileOptions{}, diags);
  const AggSite& site = p.sites[0];
  EXPECT_GE(site.dirty_scratch, 0);
  ASSERT_EQ(site.old_scratch.size(), 1u);
  EXPECT_EQ(p.scratch[static_cast<std::size_t>(site.old_scratch[0])].origin,
            ScratchVar::Origin::kOldCopy);

  // Prologue: the first body item saves the old copy.
  const Expr& body = *p.stmts[0].body;
  ASSERT_EQ(body.kind, ExprKind::kSeq);
  const Expr& first = *body.kids[0];
  EXPECT_EQ(first.kind, ExprKind::kAssign);
  EXPECT_EQ(first.assign_target, AssignTarget::kScratch);
  EXPECT_EQ(first.slot, site.old_scratch[0]);

  // Eq. 5: the assignment to the dep field is followed by a dirty update.
  bool dirty_update = false;
  walk(body, [&](const Expr& e) {
    if (e.kind == ExprKind::kAssign &&
        e.assign_target == AssignTarget::kScratch &&
        e.slot == site.dirty_scratch &&
        e.kids[0]->kind == ExprKind::kBinary &&
        e.kids[0]->bin_op == BinOp::kOr)
      dirty_update = true;
  });
  EXPECT_TRUE(dirty_update);

  // Eq. 6/7: the send loop is guarded by the dirty flag.
  bool guarded = false;
  walk(body, [&](const Expr& e) {
    if (e.kind == ExprKind::kIf && e.kids.size() == 2 &&
        e.kids[0]->kind == ExprKind::kScratchRef &&
        e.kids[0]->slot == site.dirty_scratch &&
        e.kids[1]->kind == ExprKind::kSendLoop)
      guarded = true;
  });
  EXPECT_TRUE(guarded);
}

TEST(ChangeChecks, SharedFieldGetsOneOldCopy) {
  // Two sites depending on the same field share the o_f scratch.
  Diagnostics diags;
  auto p = front_end(
      "init { local a : float = 1.0; local x : float = 0.0;"
      "       local y : float = 0.0 };"
      "iter i { x = + [ u.a | u <- #in ]; y = min [ u.a | u <- #out ];"
      "         a = x + y } until { i >= 2 }",
      diags);
  pass_anormalize(p, diags);
  pass_aggregation_conversion(p, diags);
  pass_state_binding(p, diags);
  pass_change_checks(p, CompileOptions{}, diags);
  ASSERT_EQ(p.sites.size(), 2u);
  EXPECT_EQ(p.sites[0].old_scratch[0], p.sites[1].old_scratch[0]);
  int old_copies = 0;
  for (const auto& sv : p.scratch)
    old_copies += sv.origin == ScratchVar::Origin::kOldCopy;
  EXPECT_EQ(old_copies, 1);
}

// ------------------------------------------------- §6.4 incrementalization

TEST(Incrementalize, AddsAccumulatorAndFlipsFold) {
  Diagnostics diags;
  auto p = front_end(kSimpleSum, diags);
  pass_anormalize(p, diags);
  pass_aggregation_conversion(p, diags);
  pass_state_binding(p, diags);
  pass_change_checks(p, CompileOptions{}, diags);
  pass_incrementalize_aggregations(p, diags);
  const AggSite& site = p.sites[0];
  ASSERT_GE(site.acc_slot, 0);
  EXPECT_EQ(p.fields[static_cast<std::size_t>(site.acc_slot)].origin,
            Field::Origin::kAccumulator);
  EXPECT_EQ(site.nn_slot, -1);  // + is not multiplicative
  bool incremental_fold = false;
  walk(*p.stmts[0].body, [&](const Expr& e) {
    if (e.kind == ExprKind::kFoldMessages) incremental_fold = e.flag;
  });
  EXPECT_TRUE(incremental_fold);
}

TEST(Incrementalize, MultiplicativeTripleForProduct) {
  Diagnostics diags;
  auto p = front_end(
      "init { local a : float = 2.0 };"
      "iter i { a = * [ u.a | u <- #in ] } until { i >= 2 }",
      diags);
  pass_anormalize(p, diags);
  pass_aggregation_conversion(p, diags);
  pass_state_binding(p, diags);
  pass_change_checks(p, CompileOptions{}, diags);
  pass_incrementalize_aggregations(p, diags);
  const AggSite& site = p.sites[0];
  EXPECT_GE(site.acc_slot, 0);
  EXPECT_GE(site.nn_slot, 0);
  EXPECT_GE(site.nulls_slot, 0);
  EXPECT_EQ(p.fields[static_cast<std::size_t>(site.nulls_slot)].type,
            Type::kInt);
}

TEST(Incrementalize, WarnsOnIdempotentOperators) {
  Diagnostics diags;
  auto p = front_end(programs::kSssp, diags);
  pass_anormalize(p, diags);
  pass_aggregation_conversion(p, diags);
  pass_state_binding(p, diags);
  pass_change_checks(p, CompileOptions{}, diags);
  pass_incrementalize_aggregations(p, diags);
  EXPECT_TRUE(diags.has_warning_containing("monotone"));
}

// ------------------------------------------------------ §6.5 Δ-messages

TEST(DeltaMessages, SendLoopBecomesDeltaWithOldView) {
  Diagnostics diags;
  auto p = front_end(kSimpleSum, diags);
  pass_anormalize(p, diags);
  pass_aggregation_conversion(p, diags);
  pass_state_binding(p, diags);
  CompileOptions opts;
  pass_change_checks(p, opts, diags);
  pass_incrementalize_aggregations(p, diags);
  pass_delta_messages(p, opts, diags);
  const AggSite& site = p.sites[0];
  bool delta_loop = false;
  walk(*p.stmts[0].body, [&](const Expr& e) {
    if (e.kind == ExprKind::kSendLoop) {
      EXPECT_TRUE(e.flag);
      ASSERT_EQ(e.kids.size(), 2u);
      // The old view reads the saved o_f scratch, not the live field.
      EXPECT_EQ(e.kids[1]->kind, ExprKind::kScratchRef);
      EXPECT_EQ(e.kids[1]->slot, site.old_scratch[0]);
      delta_loop = true;
    }
  });
  EXPECT_TRUE(delta_loop);
}

// ---------------------------------------------------------- §6.6 halts

TEST(InsertHalts, AppendsHaltToEveryStatement) {
  Diagnostics diags;
  Lexer lexer(kSimpleSum);
  Parser parser(lexer.tokenize());
  Program p = parser.parse_program();
  const TypecheckResult analysis = typecheck(p, diags);
  pass_anormalize(p, diags);
  pass_aggregation_conversion(p, diags);
  pass_insert_halts(p, analysis, diags);
  const Expr& body = *p.stmts[0].body;
  ASSERT_EQ(body.kind, ExprKind::kSeq);
  EXPECT_EQ(body.kids.back()->kind, ExprKind::kHalt);
}

TEST(InsertHalts, WarnsWhenBodyReadsIterVar) {
  // Full pipeline on a body that reads the iteration variable.
  const auto cp = compile(
      "init { local a : int = 0 };"
      "iter i { a = i } until { i >= 3 }",
      CompileOptions{});
  EXPECT_TRUE(
      cp.diagnostics.has_warning_containing("iteration variable"));
}

// ------------------------------------------------------------ full pipeline

TEST(Pipeline, DeltaVAddsOnlyAccumulatorStateOverDeltaVStar) {
  const auto star = compile(programs::kPageRank,
                            CompileOptions{.incrementalize = false});
  const auto full = compile(programs::kPageRank, CompileOptions{});
  // ΔV = ΔV* + one 8-byte accumulator (Table 2's PR delta).
  EXPECT_EQ(full.state_bytes(), star.state_bytes() + 8);
}

TEST(Pipeline, DumpShowsPaperNotation) {
  const auto full = compile(programs::kPageRank, CompileOptions{});
  const std::string dump = full.dump();
  EXPECT_NE(dump.find("Δ#0"), std::string::npos);
  EXPECT_NE(dump.find("aggAccum#0"), std::string::npos);
  EXPECT_NE(dump.find("halt"), std::string::npos);
  EXPECT_NE(dump.find("$dirtied_0"), std::string::npos);
}

TEST(Pipeline, StarDumpHasNoDeltaForms) {
  const auto star = compile(programs::kPageRank,
                            CompileOptions{.incrementalize = false});
  const std::string dump = star.dump();
  EXPECT_EQ(dump.find("Δ#"), std::string::npos);
  EXPECT_EQ(dump.find("halt"), std::string::npos);
  EXPECT_NE(dump.find("$assigned_0"), std::string::npos);
}

TEST(Pipeline, IntegerProductAggregationRejected) {
  EXPECT_THROW(
      compile("init { local a : int = 2 };"
              "iter i { a = * [ u.a | u <- #in ] } until { i >= 2 }",
              CompileOptions{}),
      CompileError);
  // ...but fine without incrementalization.
  EXPECT_NO_THROW(
      compile("init { local a : int = 2 };"
              "iter i { a = * [ u.a | u <- #in ] } until { i >= 2 }",
              CompileOptions{.incrementalize = false}));
}

TEST(Pipeline, NaiveSendsIncompatibleWithIncrementalization) {
  CompileOptions o;
  o.naive_sends = true;
  EXPECT_THROW(compile(programs::kPageRank, o), CompileError);
  o.incrementalize = false;
  EXPECT_NO_THROW(compile(programs::kPageRank, o));
}

TEST(Pipeline, AllBenchmarksCompileBothWays) {
  for (const char* src :
       {programs::kPageRank, programs::kPageRankUndirected, programs::kSssp,
        programs::kConnectedComponents, programs::kHits,
        programs::kReachability, programs::kMaxGossip}) {
    EXPECT_NO_THROW(compile(src, CompileOptions{}));
    EXPECT_NO_THROW(compile(src, CompileOptions{.incrementalize = false}));
  }
}

}  // namespace
}  // namespace deltav::dv
