// Replays tests/corpus/*.dv — failures saved by tools/dv_fuzz — through
// the differential harness as a deterministic regression suite. The test
// passes (vacuously) when the corpus directory is empty: its job is to
// guarantee that once a fuzz failure is fixed and its reduced case saved,
// the case stays fixed.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "dv/testing/corpus.h"
#include "dv/testing/differential.h"

#ifndef DV_CORPUS_DIR
#define DV_CORPUS_DIR "tests/corpus"
#endif

namespace deltav::dv::testing {
namespace {

TEST(FuzzCorpus, AllSavedCasesPass) {
  const auto entries = load_corpus_dir(DV_CORPUS_DIR);
  // An empty corpus is a legitimate state (no outstanding regressions);
  // the replay loop below simply has nothing to do.
  for (const auto& [path, fc] : entries) {
    SCOPED_TRACE(path);
    const auto fail = check_case(fc);
    EXPECT_FALSE(fail.has_value())
        << path << " [" << fail->check << "] " << fail->detail << "\n"
        << fc.source;
  }
}

TEST(FuzzCorpus, SerializationRoundTrips) {
  FuzzCase fc;
  fc.source = "init {\n  local x : int = vertexId\n};\n"
              "iter i {\n  let b : int = min [ u.x | u <- #in ] in\n"
              "  if b < x then x = b\n} until { i >= 3 }\n";
  fc.params["steps"] = Value::of_int(4);
  fc.params["c"] = Value::of_float(0.3125);
  fc.params["flag"] = Value::of_bool(true);
  fc.graph.kind = GraphSpec::Kind::kRmat;
  fc.graph.n = 16;
  fc.graph.m = 48;
  fc.graph.seed = 99;
  fc.graph.directed = true;
  fc.graph.weighted = true;
  fc.worker_counts = {1, 3, 4};

  const std::string text = serialize_case(fc, "round-trip\nnote");
  const FuzzCase back = parse_case(text);
  EXPECT_EQ(back.source, fc.source);
  EXPECT_EQ(back.graph.describe(), fc.graph.describe());
  EXPECT_EQ(back.worker_counts, fc.worker_counts);
  ASSERT_EQ(back.params.size(), 3u);
  EXPECT_EQ(back.params.at("steps").i, 4);
  EXPECT_DOUBLE_EQ(back.params.at("c").f, 0.3125);
  EXPECT_TRUE(back.params.at("flag").b);
  // Serializing the parse is a fixpoint (modulo the dropped note).
  EXPECT_EQ(serialize_case(back), serialize_case(parse_case(
                                      serialize_case(back))));
}

TEST(FuzzCorpus, SaveAndLoadDirectory) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "dv_fuzz_corpus_test_dir";
  std::filesystem::remove_all(dir);

  // Missing directory → empty corpus, not an error.
  EXPECT_TRUE(load_corpus_dir(dir.string()).empty());

  FuzzCase fc;
  fc.source = "init {\n  local x : int = 1\n};\n"
              "step {\n  let s : int = + [ u.x | u <- #out ] in\n"
              "  x = min(s + 1, 1000)\n}\n";
  fc.graph.kind = GraphSpec::Kind::kPath;
  fc.graph.n = 4;
  fc.graph.m = 0;
  fc.worker_counts = {2};

  const std::string path = save_case(dir.string(), fc, "sample");
  EXPECT_TRUE(std::filesystem::exists(path));
  const auto entries = load_corpus_dir(dir.string());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first, path);
  EXPECT_EQ(entries[0].second.source, fc.source);
  EXPECT_EQ(entries[0].second.worker_counts, fc.worker_counts);

  // Saved cases must replay cleanly through the harness.
  EXPECT_FALSE(check_case(entries[0].second).has_value());

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace deltav::dv::testing
