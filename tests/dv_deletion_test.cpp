// §9 future work: vertex removal with retraction Δ-messages.
//
// Engine level: deleted vertices never compute again and messages to them
// are dropped. Runtime level: a deleted vertex first broadcasts Δ-messages
// restoring its contribution to the aggregation identity ("zeros out the
// value of the vertex to its neighbors"), so ΔV's memoized accumulators
// remain coherent with ΔV*'s from-scratch folds on the shrunken graph.
#include <gtest/gtest.h>

#include <array>
#include <atomic>

#include "dv/programs/programs.h"
#include "graph/graph_builder.h"
#include "pregel/engine.h"
#include "test_util.h"

namespace deltav {
namespace {

using dv::Value;
using test::compile_dv;
using test::small_engine;

// ------------------------------------------------------------ engine level

TEST(EngineDeletion, DeletedVertexNeverComputes) {
  pregel::Engine<int> e(4, small_engine(2));
  e.mark_deleted(2);
  std::array<std::atomic<int>, 4> runs{};
  for (int s = 0; s < 3; ++s)
    e.step([&](auto& ctx, graph::VertexId v, std::span<const int>) {
      ++runs[v];
      if (ctx.superstep() >= 2) ctx.vote_to_halt();
    });
  EXPECT_EQ(runs[2].load(), 0);
  EXPECT_GT(runs[0].load(), 0);
}

TEST(EngineDeletion, MessagesToDeletedAreDropped) {
  pregel::Engine<int> e(3, small_engine(1));
  e.mark_deleted(1);
  e.step([&](auto& ctx, graph::VertexId v, std::span<const int>) {
    if (v == 0) {
      ctx.send(1, 7);  // dropped
      ctx.send(2, 8);  // delivered
    }
    ctx.vote_to_halt();
  });
  int received_by_2 = 0;
  e.step([&](auto& ctx, graph::VertexId v, std::span<const int> msgs) {
    if (v == 2) received_by_2 = static_cast<int>(msgs.size());
    EXPECT_NE(v, 1u);
    ctx.vote_to_halt();
  });
  EXPECT_EQ(received_by_2, 1);
  EXPECT_EQ(e.stats().supersteps[0].messages_dropped, 1u);
  EXPECT_EQ(e.stats().supersteps[0].messages_delivered, 1u);
  EXPECT_TRUE(e.is_deleted(1));
}

TEST(EngineDeletion, DeletedVertexNotRevivedByActivateAll) {
  pregel::Engine<int> e(5, small_engine(2));
  e.mark_deleted(3);
  e.step([](auto& ctx, graph::VertexId, std::span<const int>) {
    ctx.vote_to_halt();
  });
  e.activate_all();
  std::atomic<int> ran{0};
  e.step([&](auto& ctx, graph::VertexId v, std::span<const int>) {
    EXPECT_NE(v, 3u);
    ++ran;
    ctx.vote_to_halt();
  });
  EXPECT_EQ(ran.load(), 4);
}

TEST(EngineDeletion, MarkDeletedFromComputeIsSafe) {
  pregel::Engine<int>* engine_ptr = nullptr;
  pregel::Engine<int> e(4, small_engine(2));
  engine_ptr = &e;
  e.step([&](auto& ctx, graph::VertexId v, std::span<const int>) {
    if (v == 1) engine_ptr->mark_deleted(v);
    else ctx.vote_to_halt();
  });
  EXPECT_TRUE(e.is_deleted(1));
  std::atomic<int> ran{0};
  e.step([&](auto& ctx, graph::VertexId v, std::span<const int>) {
    EXPECT_NE(v, 1u);
    ++ran;
    ctx.vote_to_halt();
  });
  (void)ran;
}

// ----------------------------------------------------------- runtime level

/// A +-aggregation "mass gossip": each vertex repeatedly publishes a fixed
/// weight; living vertices see the sum of their in-neighbors' weights.
/// Deleting a vertex must remove exactly its contribution.
constexpr const char* kMassProgram = R"(
  param rounds : int;
  init {
    local mass : float = 1.0 + vertexId;
    local seen : float = 0.0
  };
  iter i {
    seen = + [ u.mass | u <- #in ];
    mass = mass  -- republish unchanged (keeps ΔV* folds complete)
  } until { i >= rounds }
)";

TEST(DvDeletion, RetractionMatchesFromScratchRecomputation) {
  const auto g = test::small_directed(123);
  const std::map<std::string, Value> params = {
      {"rounds", Value::of_int(8)}};

  dv::VertexDeletion del;
  del.stmt_index = 0;
  del.iteration = 4;
  del.vertices = {1, 5, 9, 13};

  dv::DvRunOptions o;
  o.engine = small_engine();
  o.params = params;
  o.deletions = {del};

  const auto full =
      dv::run_program(compile_dv(kMassProgram, true), g, o);
  const auto star =
      dv::run_program(compile_dv(kMassProgram, false), g, o);

  const int seen = full.field_slot("seen");
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    const auto vid = static_cast<graph::VertexId>(v);
    bool deleted = false;
    for (auto d : del.vertices) deleted = deleted || d == vid;
    if (deleted) continue;  // victims' state is frozen at deletion
    EXPECT_NEAR(full.at(vid, seen).as_f(), star.at(vid, seen).as_f(), 1e-9)
        << "vertex " << v;
  }
}

TEST(DvDeletion, AnalyticCheckOnStar) {
  // Directed star: leaves 1..n point at the hub 0. Hub's sum = Σ leaf
  // masses; deleting leaf 3 (mass 4.0) must drop the sum by exactly 4.
  const std::size_t leaves = 6;
  graph::GraphBuilder b(leaves + 1, /*directed=*/true);
  for (std::size_t l = 1; l <= leaves; ++l)
    b.add_edge(static_cast<graph::VertexId>(l), 0);
  const auto g = b.build();

  dv::DvRunOptions o;
  o.engine = small_engine(1);
  o.params = {{"rounds", Value::of_int(6)}};

  const auto before =
      dv::run_program(compile_dv(kMassProgram, true), g, o);
  const double sum_before = before.at(0, before.field_slot("seen")).as_f();

  dv::VertexDeletion del;
  del.iteration = 3;
  del.vertices = {3};
  o.deletions = {del};
  const auto after = dv::run_program(compile_dv(kMassProgram, true), g, o);
  const double sum_after = after.at(0, after.field_slot("seen")).as_f();

  EXPECT_NEAR(sum_before - sum_after, 4.0, 1e-12);  // mass of vertex 3
}

TEST(DvDeletion, BooleanRetractionDenulls) {
  // && over neighbors: vertex 2 is the only 'false' (absorbing); deleting
  // it must send a denull so neighbors' aggregation recovers to true.
  const char* src = R"(
    param rounds : int;
    init {
      local flag : bool = vertexId != 2;
      local all : bool = true
    };
    iter i {
      all = && [ u.flag | u <- #neighbors ];
      flag = flag
    } until { i >= rounds }
  )";
  const auto g = graph::cycle(5);
  dv::DvRunOptions o;
  o.engine = small_engine(1);
  o.params = {{"rounds", Value::of_int(6)}};

  const auto before = dv::run_program(compile_dv(src, true), g, o);
  EXPECT_FALSE(before.at(1, before.field_slot("all")).as_b());
  EXPECT_FALSE(before.at(3, before.field_slot("all")).as_b());

  dv::VertexDeletion del;
  del.iteration = 3;
  del.vertices = {2};
  o.deletions = {del};
  const auto after = dv::run_program(compile_dv(src, true), g, o);
  // Neighbors of 2 recover: their remaining neighborhood is all-true.
  EXPECT_TRUE(after.at(1, after.field_slot("all")).as_b());
  EXPECT_TRUE(after.at(3, after.field_slot("all")).as_b());
}

TEST(DvDeletion, MinAggregationRejectedForDeltaV) {
  const auto g = test::small_directed();
  dv::DvRunOptions o;
  o.engine = small_engine(1);
  o.params = {{"source", Value::of_int(0)}};
  dv::VertexDeletion del;
  del.iteration = 2;
  del.vertices = {1};
  o.deletions = {del};
  EXPECT_THROW(
      dv::run_program(compile_dv(dv::programs::kSssp, true), g, o),
      CheckError);
  // ΔV* recomputes from scratch; deletion is fine there.
  EXPECT_NO_THROW(
      dv::run_program(compile_dv(dv::programs::kSssp, false), g, o));
}

TEST(DvDeletion, ValidationCatchesBadSchedules) {
  const auto g = graph::cycle(4);
  dv::DvRunOptions o;
  o.engine = small_engine(1);
  o.params = {{"rounds", Value::of_int(3)}};
  dv::VertexDeletion del;
  del.stmt_index = 7;  // out of range
  del.vertices = {0};
  o.deletions = {del};
  EXPECT_THROW(dv::run_program(compile_dv(kMassProgram, true), g, o),
               CheckError);
  del.stmt_index = 0;
  del.iteration = 0;  // 1-based
  o.deletions = {del};
  EXPECT_THROW(dv::run_program(compile_dv(kMassProgram, true), g, o),
               CheckError);
  del.iteration = 1;
  del.vertices = {99};  // out of range
  o.deletions = {del};
  EXPECT_THROW(dv::run_program(compile_dv(kMassProgram, true), g, o),
               CheckError);
}

TEST(DvDeletion, DeletedVerticesStopCostingMessages) {
  // A decaying broadcast: every vertex's published value changes each
  // round, so living vertices keep sending — deletion must remove the
  // victims' ongoing traffic (minus the one-off retraction round).
  const char* decaying = R"(
    param rounds : int;
    init {
      local mass : float = 1.0 + vertexId;
      local seen : float = 0.0
    };
    iter i {
      seen = + [ u.mass | u <- #in ];
      mass = mass * 0.9
    } until { i >= rounds }
  )";
  const auto g = test::small_directed(321);
  dv::DvRunOptions o;
  o.engine = small_engine();
  o.params = {{"rounds", Value::of_int(10)}};

  // Delete a third of the graph early; late-superstep traffic must drop.
  dv::VertexDeletion del;
  del.iteration = 2;
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 3)
    del.vertices.push_back(v);
  o.deletions = {del};
  const auto with_del =
      dv::run_program(compile_dv(decaying, true), g, o);

  dv::DvRunOptions o2 = o;
  o2.deletions.clear();
  const auto without =
      dv::run_program(compile_dv(decaying, true), g, o2);
  EXPECT_LT(with_del.stats.total_messages_sent(),
            without.stats.total_messages_sent());
}

}  // namespace
}  // namespace deltav
