// Feature-level tests of the compiled runtime: ε-slop (§9), multiplicative
// aggregations with absorbing transitions over real supersteps, multi-
// statement programs (phase priming), runner validation, and the ablation
// send policies.
#include <gtest/gtest.h>

#include <mutex>

#include "algorithms/pagerank.h"
#include "dv/programs/programs.h"
#include "test_util.h"

namespace deltav::dv {
namespace {

using test::compile_dv;
using test::small_engine;

DvRunResult run(const CompiledProgram& cp, const graph::CsrGraph& g,
                std::map<std::string, Value> params = {}) {
  DvRunOptions o;
  o.engine = small_engine();
  o.params = std::move(params);
  return run_program(cp, g, o);
}

// -------------------------------------------------------------- ε-slop §9

TEST(Epsilon, ZeroEpsilonIsDefaultBehaviour) {
  const auto g = test::small_directed(91);
  const std::map<std::string, Value> params = {
      {"steps", Value::of_int(19)}};
  CompileOptions o;
  o.epsilon = 0.0;
  const auto a = run(compile(programs::kPageRank, o), g, params);
  const auto b = run(compile(programs::kPageRank, CompileOptions{}), g,
                     params);
  EXPECT_EQ(a.stats.total_messages_sent(), b.stats.total_messages_sent());
}

TEST(Epsilon, LargerSlopSendsFewerMessages) {
  const auto g = graph::rmat(256, 2048, 93);
  const std::map<std::string, Value> params = {
      {"steps", Value::of_int(29)}};
  std::uint64_t prev = ~0ULL;
  for (double eps : {0.0, 1e-6, 1e-4, 1e-2}) {
    CompileOptions o;
    o.epsilon = eps;
    const auto r = run(compile(programs::kPageRank, o), g, params);
    EXPECT_LE(r.stats.total_messages_sent(), prev) << "eps=" << eps;
    prev = r.stats.total_messages_sent();
  }
}

TEST(Epsilon, BoundedErrorAgainstExact) {
  const auto g = graph::rmat(128, 1024, 95);
  const std::map<std::string, Value> params = {
      {"steps", Value::of_int(29)}};
  const auto exact =
      run(compile(programs::kPageRank, CompileOptions{}), g, params)
          .field_as_double("vl");
  CompileOptions o;
  o.epsilon = 1e-5;
  const auto approx =
      run(compile(programs::kPageRank, o), g, params).field_as_double("vl");
  // Each suppressed message is off by at most ε; with ~deg senders and the
  // 0.85/N damping, the rank error stays within a small multiple of ε·deg.
  for (std::size_t v = 0; v < exact.size(); ++v)
    EXPECT_NEAR(approx[v], exact[v], 1e-2) << v;
}

TEST(Epsilon, RequiresIncrementalization) {
  CompileOptions o;
  o.incrementalize = false;
  o.epsilon = 0.5;
  EXPECT_THROW(compile(programs::kPageRank, o), CompileError);
}

TEST(Epsilon, IgnoredForNonSumSitesWithWarning) {
  CompileOptions o;
  o.epsilon = 0.5;
  const auto cp = compile(programs::kSssp, o);
  EXPECT_TRUE(cp.diagnostics.has_warning_containing("epsilon slop ignored"));
  EXPECT_EQ(cp.layout.epsilon_bytes, 0u);
}

// -------------------------------------- multiplicative over real supersteps

TEST(Multiplicative, ProductWithAbsorbingTransitions) {
  // Vertex `z` drops to 0 at iteration 1 (a null transition broadcast to
  // its neighbors) and recovers at iteration 2 (denull). ΔV's triple-field
  // accumulator must track both; ΔV* recomputes from scratch and serves as
  // the oracle.
  const char* src = R"(
    param z : int;
    init { local a : float = 1.0 + vertexId / graphSize };
    iter i {
      let p : float = * [ u.a | u <- #neighbors ] in
      if vertexId == z && i == 1 then a = 0.0 else a = min(p, 2.0)
    } until { i >= 5 }
  )";
  const auto g = graph::cycle(8);
  const std::map<std::string, Value> params = {{"z", Value::of_int(3)}};
  const auto star =
      run(compile_dv(src, false), g, params).field_as_double("a");
  const auto full =
      run(compile_dv(src, true), g, params).field_as_double("a");
  test::expect_close(full, star, 1e-9);
  // The zero actually propagated (neighbors of z saw a null product).
  bool some_zero = false;
  for (double v : star) some_zero = some_zero || v == 0.0;
  EXPECT_TRUE(some_zero);
}

TEST(Multiplicative, AllAndAggregationOverBooleans) {
  // "all neighbors reached": && aggregation with false as absorbing.
  // `reached` is (re)assigned every iteration so the ΔV* variant's
  // non-memoized folds always see every sender (see DESIGN.md on ΔV*'s
  // completeness requirement); a fixed iteration bound keeps both
  // variants aligned.
  const char* src = R"(
    param source : int;
    init {
      local reached : bool = vertexId == source;
      local surrounded : bool = false
    };
    iter i {
      let any : bool = || [ u.reached | u <- #neighbors ] in
      let all : bool = && [ u.reached | u <- #neighbors ] in
      surrounded = all;
      reached = reached || any
    } until { i >= 8 }
  )";
  const auto g = graph::cycle(6);
  const std::map<std::string, Value> params = {
      {"source", Value::of_int(0)}};
  const auto star = run(compile_dv(src, false), g, params);
  const auto full = run(compile_dv(src, true), g, params);
  const int rs = star.field_slot("reached");
  const int ss = star.field_slot("surrounded");
  for (graph::VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(full.at(v, rs).as_b(), star.at(v, rs).as_b()) << v;
    EXPECT_EQ(full.at(v, ss).as_b(), star.at(v, ss).as_b()) << v;
    EXPECT_TRUE(full.at(v, rs).as_b());  // 6-cycle, 8 rounds: all reached
    EXPECT_TRUE(full.at(v, ss).as_b());  // ...and surrounded
  }
  // The incremental variant must not send more: && / || deltas only fire
  // on absorbing-state transitions.
  EXPECT_LE(full.stats.total_messages_sent(),
            star.stats.total_messages_sent());
}

// ------------------------------------------------- multi-statement programs

TEST(MultiStatement, PhasePrimingKeepsAccumulatorsCoherent) {
  const char* src = R"(
    init { local a : float = 1.0; local b : float = 0.0 };
    step { b = + [ u.a | u <- #neighbors ]; a = b + 1.0 };
    iter j {
      b = + [ u.a | u <- #neighbors ];
      a = b / 2.0 + 1.0
    } until { j >= 3 }
  )";
  const auto g = test::small_undirected(97);
  const auto star = run(compile_dv(src, false), g);
  const auto full = run(compile_dv(src, true), g);
  test::expect_close(full.field_as_double("a"), star.field_as_double("a"),
                     1e-9);
  test::expect_close(full.field_as_double("b"), star.field_as_double("b"),
                     1e-9);
  EXPECT_EQ(full.iterations.size(), 2u);
  EXPECT_EQ(full.iterations[0], 1u);
  EXPECT_EQ(full.iterations[1], 3u);
}

TEST(MultiStatement, StatementWithoutSitesRunsEverywhere) {
  const char* src = R"(
    init { local a : float = 1.0 };
    iter i { a = + [ u.a | u <- #neighbors ] * 0.25 } until { i >= 2 };
    step { a = a + 100.0 }
  )";
  const auto g = graph::cycle(5);
  const auto full = run(compile_dv(src, true), g);
  // Every vertex got the +100 even though all were halted after the iter.
  for (double v : full.field_as_double("a")) EXPECT_GT(v, 100.0);
}

// -------------------------------------------------------- runner validation

TEST(Runner, MissingParamThrows) {
  const auto cp = compile_dv(programs::kSssp);
  const auto g = test::small_directed();
  EXPECT_THROW(run(cp, g, {}), CheckError);
}

TEST(Runner, NeighborsOnDirectedGraphRejected) {
  const auto cp = compile_dv(programs::kConnectedComponents);
  const auto g = test::small_directed();
  EXPECT_THROW(run(cp, g), CheckError);
}

TEST(Runner, SuperstepCapGuardsNonTermination) {
  // An until that never holds: the value keeps oscillating.
  const char* src = R"(
    init { local a : float = 0.0 };
    iter i { a = + [ u.a | u <- #neighbors ] + 1.0 } until { i >= 1000000 }
  )";
  const auto cp = compile_dv(src, true);
  DvRunOptions o;
  o.engine = small_engine();
  o.max_supersteps = 50;
  EXPECT_THROW(run_program(cp, graph::cycle(4), o), CheckError);
}

TEST(Runner, ResultAccessors) {
  const auto g = graph::cycle(4);
  const auto r = run(compile_dv(programs::kMaxGossip), g);
  EXPECT_EQ(r.num_vertices, 4u);
  EXPECT_GE(r.field_slot("big"), 0);
  EXPECT_THROW(r.field_slot("nope"), CheckError);
  EXPECT_EQ(r.field_as_int("big").size(), 4u);
  EXPECT_GT(r.supersteps, 1u);
}

// ------------------------------------------------------- send policy matrix

TEST(SendPolicy, NaiveSendsStrictlyMoreThanOnAssign) {
  // SSSP is the separator: kAlways broadcasts every superstep, kOnAssign
  // only on improvement. The naive variant can never quiesce (it always
  // sends), so use a fixed iteration budget for both.
  const char* bounded_sssp = R"(
    param source : int;
    init {
      local dist : float = if vertexId == source then 0 else infty
    };
    iter i {
      let best : float = min [ u.dist + u.edge | u <- #in ] in
      if best < dist then dist = best
    } until { i >= 25 }
  )";
  graph::RmatOptions ro;
  ro.weighted = true;
  const auto g = graph::rmat(128, 512, 99, ro);
  const std::map<std::string, Value> params = {
      {"source", Value::of_int(0)}};

  CompileOptions naive;
  naive.incrementalize = false;
  naive.naive_sends = true;
  CompileOptions star;
  star.incrementalize = false;

  DvRunOptions o;
  o.engine = small_engine();
  o.params = params;

  const auto naive_r = run_program(compile(bounded_sssp, naive), g, o);
  const auto star_r = run_program(compile(bounded_sssp, star), g, o);
  EXPECT_GT(naive_r.stats.total_messages_sent(),
            2 * star_r.stats.total_messages_sent());
  // Results still agree.
  test::expect_close(naive_r.field_as_double("dist"),
                     star_r.field_as_double("dist"), 1e-9);
}

TEST(SendPolicy, HaltInsertionTogglable) {
  const auto g = test::small_directed(101);
  const std::map<std::string, Value> params = {
      {"steps", Value::of_int(19)}};
  CompileOptions no_halts;
  no_halts.insert_halts = false;
  const auto with_halts =
      run(compile(programs::kPageRank, CompileOptions{}), g, params);
  const auto without =
      run(compile(programs::kPageRank, no_halts), g, params);
  // Same answers, same messages — halts only affect which vertices are
  // *scanned*, visible in active-vertex counts.
  test::expect_close(with_halts.field_as_double("vl"),
                     without.field_as_double("vl"), 1e-12);
  EXPECT_EQ(with_halts.stats.total_messages_sent(),
            without.stats.total_messages_sent());
  std::uint64_t active_halts = 0, active_none = 0;
  for (const auto& s : with_halts.stats.supersteps)
    active_halts += s.active_vertices;
  for (const auto& s : without.stats.supersteps)
    active_none += s.active_vertices;
  EXPECT_LT(active_halts, active_none);
}

// ------------------------------------------------- meaningful-only property

/// Def. 1 checked dynamically: on ΔV runs, reconstruct per-(sender, site)
/// sent values and assert no two consecutive sends carried the same value.
TEST(MeaningfulMessages, NoConsecutiveDuplicateSends) {
  // Instrument via small graph + per-superstep message statistics: with
  // the PageRank program on a path graph, ranks converge quickly; ΔV must
  // stop sending once values repeat.
  const auto g = graph::path(8, /*directed=*/true);
  const std::map<std::string, Value> params = {
      {"steps", Value::of_int(29)}};
  const auto full =
      run(compile(programs::kPageRank, CompileOptions{}), g, params);
  const auto star =
      run(compile(programs::kPageRank,
                  CompileOptions{.incrementalize = false}),
          g, params);
  // On a path, PageRank stabilizes after ~8 supersteps; ΔV message totals
  // must be well below ΔV*'s 29-supersteps-of-everything.
  EXPECT_LT(full.stats.total_messages_sent(),
            star.stats.total_messages_sent() / 2);
  // And the tail supersteps of ΔV are fully quiet.
  const auto& steps = full.stats.supersteps;
  ASSERT_GT(steps.size(), 4u);
  EXPECT_EQ(steps[steps.size() - 2].messages_sent, 0u);
}


/// Definition 1, checked message-by-message on a live run via the send
/// probe: every ΔV message must be meaningful — a non-identity Δ or an
/// absorbing-state transition. The same probe shows ΔV* *does* repeat
/// values (the redundancy incrementalization removes).
TEST(MeaningfulMessages, DefinitionOneHoldsOnLiveRuns) {
  const auto g = graph::rmat(128, 768, 555);
  const std::map<std::string, Value> params = {
      {"steps", Value::of_int(24)}};

  // ΔV: no message may be a no-op for its site's fold.
  {
    std::mutex mu;
    std::uint64_t checked = 0;
    dv::DvRunOptions o;
    o.engine = small_engine();
    o.params = params;
    const auto cp = compile(programs::kPageRank, CompileOptions{});
    o.send_probe = [&](graph::VertexId, graph::VertexId,
                       const DvMessage& m) {
      std::lock_guard<std::mutex> lock(mu);
      ++checked;
      const AggOp op = cp.site_ops.ops[m.site];
      EXPECT_FALSE(is_identity(op, m.payload) && m.nulls == 0 &&
                   m.denulls == 0)
          << "meaningless Δ-message escaped";
    };
    run_program(cp, g, o);
    EXPECT_GT(checked, 0u);
  }

  // ΔV*: reconstruct per-(src,dst) streams and find repeated values.
  {
    std::mutex mu;
    std::map<std::pair<graph::VertexId, graph::VertexId>, double> last;
    std::uint64_t repeats = 0;
    dv::DvRunOptions o;
    o.engine = small_engine();
    o.use_combiner = false;  // observe raw per-edge streams
    o.params = params;
    o.send_probe = [&](graph::VertexId src, graph::VertexId dst,
                       const DvMessage& m) {
      std::lock_guard<std::mutex> lock(mu);
      auto [it, fresh] = last.try_emplace({src, dst}, m.payload.as_f());
      if (!fresh) {
        if (it->second == m.payload.as_f()) ++repeats;
        it->second = m.payload.as_f();
      }
    };
    const auto cp =
        compile(programs::kPageRank, CompileOptions{.incrementalize = false});
    run_program(cp, g, o);
    EXPECT_GT(repeats, 0u) << "expected ΔV* to send duplicate values";
  }
}

}  // namespace
}  // namespace deltav::dv
