// C++ backend tests: structural properties of the emitted translation
// units for every benchmark/variant, plus a full integration test that
// compiles the generated PageRank with the host toolchain, runs it, and
// checks it against the interpreter and the sequential oracle.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "dv/codegen/cpp_backend.h"
#include "dv/programs/programs.h"
#include "test_util.h"

#ifndef DV_SOURCE_DIR
#define DV_SOURCE_DIR "."
#endif
#ifndef DV_BINARY_DIR
#define DV_BINARY_DIR "."
#endif

namespace deltav::dv {
namespace {

std::string gen(const char* src, bool incremental,
                const std::string& name = "Prog") {
  CompileOptions o;
  o.incrementalize = incremental;
  return emit_cpp(compile(src, o), name);
}

TEST(Codegen, EmitsForAllSingleStatementBenchmarks) {
  for (const char* src :
       {programs::kPageRank, programs::kPageRankUndirected, programs::kSssp,
        programs::kConnectedComponents, programs::kHits,
        programs::kReachability, programs::kMaxGossip}) {
    for (bool inc : {false, true}) {
      const std::string cpp = gen(src, inc);
      EXPECT_NE(cpp.find("struct Prog"), std::string::npos);
      EXPECT_NE(cpp.find("static Result run"), std::string::npos);
      EXPECT_NE(cpp.find("engine.step"), std::string::npos);
    }
  }
}

TEST(Codegen, DeltaVariantCarriesIncrementalMachinery) {
  const std::string cpp = gen(programs::kPageRank, true, "PageRank");
  // Memoized accumulator field, dirty-flag scratch, Δ payload, halt.
  EXPECT_NE(cpp.find("f_aggAccum_0"), std::string::npos);
  EXPECT_NE(cpp.find("dirtied_0"), std::string::npos);
  EXPECT_NE(cpp.find("m.payload = double(nv - ov);"), std::string::npos);
  EXPECT_NE(cpp.find("ctx.vote_to_halt();"), std::string::npos);
}

TEST(Codegen, StarVariantSendsFullValues) {
  const std::string cpp = gen(programs::kPageRank, false, "PageRank");
  EXPECT_EQ(cpp.find("f_aggAccum_0"), std::string::npos);
  EXPECT_EQ(cpp.find("vote_to_halt"), std::string::npos);
  EXPECT_NE(cpp.find("assigned_0"), std::string::npos);
  EXPECT_NE(cpp.find("m.payload = double(nv);"), std::string::npos);
  // ΔV* tracks assignments for the stable-quiescence rule.
  EXPECT_NE(cpp.find("any_assign"), std::string::npos);
}

TEST(Codegen, MultiplicativeSitesEmitTripleAndTags) {
  const char* src =
      "init { local a : float = 2.0 };"
      "iter i { a = * [ u.a | u <- #in ] } until { i >= 3 }";
  const std::string cpp = gen(src, true);
  EXPECT_NE(cpp.find("f_nnAcc_0"), std::string::npos);
  EXPECT_NE(cpp.find("f_aggNulls_0"), std::string::npos);
  EXPECT_NE(cpp.find("m.nulls = 1;"), std::string::npos);
  EXPECT_NE(cpp.find("m.denulls = 1;"), std::string::npos);
}

TEST(Codegen, StableUntilUsesQuiescence) {
  const std::string cpp = gen(programs::kSssp, true, "Sssp");
  EXPECT_NE(cpp.find("quiescent"), std::string::npos);
  EXPECT_NE(cpp.find("messages_sent == 0"), std::string::npos);
}

TEST(Codegen, ParamsAndResultExposeUserSurface) {
  const std::string cpp = gen(programs::kSssp, true, "Sssp");
  EXPECT_NE(cpp.find("std::int64_t source = 0;"), std::string::npos);
  EXPECT_NE(cpp.find("std::vector<double> dist;"), std::string::npos);
  // Compiler-added fields are not part of the result surface.
  EXPECT_EQ(cpp.find("std::vector<double> aggAccum_0;"), std::string::npos);
}

TEST(Codegen, MultiStatementProgramsRejected) {
  const char* two =
      "init { local a : float = 1.0 };"
      "step { a = a + 1.0 };"
      "step { a = a + 1.0 }";
  EXPECT_THROW(emit_cpp(compile(two, {}), "Two"), CompileError);
}

TEST(Codegen, WireSizesMirrorRuntimeAccounting) {
  // HITS: two float sites → 8-byte payload + 1-byte site id.
  const std::string cpp = gen(programs::kHits, true, "Hits");
  EXPECT_NE(cpp.find("case 0: return 9;"), std::string::npos);
  EXPECT_NE(cpp.find("case 1: return 9;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Integration: compile the generated code with the host toolchain and run
// it against the interpreter and the oracle.
// ---------------------------------------------------------------------------

TEST(CodegenIntegration, GeneratedPageRankCompilesAndMatchesOracle) {
  const std::string dir = ::testing::TempDir();
  const std::string header = dir + "/dv_gen_pagerank.h";
  const std::string main_cpp = dir + "/dv_gen_main.cpp";
  const std::string binary = dir + "/dv_gen_main";

  {
    std::ofstream out(header);
    out << gen(programs::kPageRank, true, "PageRank");
  }
  {
    std::ofstream out(main_cpp);
    out << R"(#include <cmath>
#include <cstdio>
#include ")" << header
        << R"("
#include "algorithms/pagerank.h"
#include "graph/generators.h"
int main() {
  const auto g = deltav::graph::rmat(1024, 8192, 77);
  dvgen::PageRank::Params params;
  params.steps = 29;
  auto r = dvgen::PageRank::run(g, params);
  const auto oracle = deltav::algorithms::pagerank_oracle(g, 30);
  double maxd = 0;
  for (std::size_t v = 0; v < oracle.size(); ++v)
    maxd = std::max(maxd, std::abs(r.vl[v] - oracle[v]));
  std::printf("maxd=%g msgs=%llu\n", maxd,
              (unsigned long long)r.stats.total_messages_sent());
  return maxd < 1e-9 ? 0 : 1;
}
)";
  }

  const std::string cmd =
      std::string("g++ -std=c++20 -O1 -I ") + DV_SOURCE_DIR + "/src " +
      main_cpp + " " + DV_BINARY_DIR + "/src/algorithms/libdv_algorithms.a " +
      DV_BINARY_DIR + "/src/pregel/libdv_pregel.a " + DV_BINARY_DIR +
      "/src/graph/libdv_graph.a " + DV_BINARY_DIR +
      "/src/net/libdv_net.a " + DV_BINARY_DIR +
      "/src/common/libdv_common.a -pthread -o " + binary + " 2>&1";
  const int compile_rc = std::system(cmd.c_str());
  ASSERT_EQ(compile_rc, 0) << "generated code failed to compile";
  const int run_rc = std::system(binary.c_str());
  EXPECT_EQ(run_rc, 0) << "generated PageRank diverged from the oracle";
}

}  // namespace
}  // namespace deltav::dv
