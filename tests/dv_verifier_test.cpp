// The AST verifier must catch the corruption modes a buggy pass could
// introduce — each test hand-breaks a well-formed program and expects a
// loud failure.
#include <gtest/gtest.h>

#include "dv/compiler.h"
#include "dv/passes/verifier.h"
#include "dv/programs/programs.h"

namespace deltav::dv {
namespace {

CompiledProgram well_formed() {
  return compile(programs::kPageRank, {});
}

/// Finds the first node of `kind` in the statement bodies (depth-first).
Expr* find_node(Program& prog, ExprKind kind) {
  Expr* found = nullptr;
  auto walk = [&](auto&& self, Expr& e) -> void {
    if (found) return;
    if (e.kind == kind) {
      found = &e;
      return;
    }
    for (auto& k : e.kids) self(self, *k);
  };
  for (auto& s : prog.stmts) walk(walk, *s.body);
  return found;
}

TEST(Verifier, AcceptsAllCompiledBenchmarks) {
  for (const char* src :
       {programs::kPageRank, programs::kSssp, programs::kHits,
        programs::kConnectedComponents, programs::kReachability}) {
    for (bool inc : {false, true}) {
      CompileOptions o;
      o.incrementalize = inc;
      const auto cp = compile(src, o);  // compile() runs the verifier
      EXPECT_NO_THROW(
          verify_program(cp.program, VerifyStage::kFinal));
    }
  }
}

TEST(Verifier, CatchesFieldSlotOutOfRange) {
  auto cp = well_formed();
  Expr* ref = find_node(cp.program, ExprKind::kFieldRef);
  ASSERT_NE(ref, nullptr);
  ref->slot = 999;
  EXPECT_THROW(verify_program(cp.program, VerifyStage::kFinal), CheckError);
}

TEST(Verifier, CatchesTypeTableDisagreement) {
  auto cp = well_formed();
  Expr* ref = find_node(cp.program, ExprKind::kFieldRef);
  ASSERT_NE(ref, nullptr);
  ref->type = Type::kBool;  // field table says float
  EXPECT_THROW(verify_program(cp.program, VerifyStage::kFinal), CheckError);
}

TEST(Verifier, CatchesSurvivingAggregation) {
  auto cp = well_formed();
  Expr* fold = find_node(cp.program, ExprKind::kFoldMessages);
  ASSERT_NE(fold, nullptr);
  fold->kind = ExprKind::kAgg;  // pretend §6.1 missed one
  fold->kids.push_back(mk_int(1));
  EXPECT_THROW(verify_program(cp.program, VerifyStage::kFinal), CheckError);
}

TEST(Verifier, CatchesWrongSendDirection) {
  auto cp = well_formed();
  Expr* loop = find_node(cp.program, ExprKind::kSendLoop);
  ASSERT_NE(loop, nullptr);
  loop->dir = GraphDir::kIn;  // PageRank pulls #in → must push #out
  EXPECT_THROW(verify_program(cp.program, VerifyStage::kFinal), CheckError);
}

TEST(Verifier, CatchesIncrementalFoldWithoutAccumulator) {
  auto cp = well_formed();
  cp.program.sites[0].acc_slot = -1;  // §6.4 "forgot" the field
  EXPECT_THROW(verify_program(cp.program, VerifyStage::kFinal), CheckError);
}

TEST(Verifier, CatchesUntypedNode) {
  auto cp = well_formed();
  Expr* ref = find_node(cp.program, ExprKind::kBinary);
  ASSERT_NE(ref, nullptr);
  ref->type = Type::kUnknown;
  EXPECT_THROW(verify_program(cp.program, VerifyStage::kFinal), CheckError);
}

TEST(Verifier, CatchesWrongKidCount) {
  auto cp = well_formed();
  Expr* bin = find_node(cp.program, ExprKind::kBinary);
  ASSERT_NE(bin, nullptr);
  bin->kids.pop_back();
  EXPECT_THROW(verify_program(cp.program, VerifyStage::kFinal), CheckError);
}

TEST(Verifier, StageGatesInternalForms) {
  // A surface-stage program may contain kAgg but not kFoldMessages.
  Diagnostics diags;
  auto prog = parse_and_check(
      "init { local a : float = 1.0 };"
      "step { a = + [ u.a | u <- #in ] }",
      diags);
  EXPECT_NO_THROW(verify_program(prog, VerifyStage::kAfterTypecheck));
  Expr* agg = find_node(prog, ExprKind::kAgg);
  ASSERT_NE(agg, nullptr);
  EXPECT_THROW(verify_program(prog, VerifyStage::kFinal), CheckError);
}

}  // namespace
}  // namespace deltav::dv
