// Bounded differential fuzz smoke: a fixed-seed sweep of generated
// programs through the full ΔV/ΔV* differential harness, plus sanity
// checks on the generator and reducer themselves. The long-soak version of
// this loop lives in tools/dv_fuzz.cpp.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.h"
#include "dv/compiler.h"
#include "dv/testing/differential.h"
#include "dv/testing/program_gen.h"
#include "dv/testing/reducer.h"
#include "test_util.h"

namespace deltav::dv::testing {
namespace {

constexpr int kSmokePrograms = 200;

TEST(FuzzGenerator, ProducesWellTypedProgramsCoveringAllOperators) {
  const std::uint64_t seed = test::effective_seed(0xD1FF5EED);
  Rng rng(seed);
  std::set<AggOp> ops_seen;
  std::set<std::size_t> stmt_counts;
  bool saw_param = false, saw_edge = false, saw_stable = false;
  for (int k = 0; k < 300; ++k) {
    Rng prng = rng.split();
    const ProgramSpec spec = generate_spec(prng);
    const std::string src = render(spec);
    SCOPED_TRACE(test::seed_banner(seed) + " program " +
                 std::to_string(k) + "\n" + src);
    CompiledProgram cp;
    ASSERT_NO_THROW(cp = compile(src)) << src;
    for (const auto& site : cp.program.sites) ops_seen.insert(site.op);
    stmt_counts.insert(cp.program.stmts.size());
    saw_param |= !cp.program.params.empty();
    saw_edge |= src.find("u.edge") != std::string::npos;
    saw_stable |= src.find("stable") != std::string::npos;
  }
  EXPECT_EQ(ops_seen.size(), 6u) << "all six ⊞ operators should appear";
  EXPECT_GT(stmt_counts.size(), 1u) << "multi-statement programs expected";
  EXPECT_TRUE(saw_param);
  EXPECT_TRUE(saw_edge);
  EXPECT_TRUE(saw_stable);
}

TEST(FuzzSmoke, GeneratedProgramsPassDifferentialChecks) {
  const std::uint64_t seed = test::effective_seed(0xF0225EED);
  Rng rng(seed);
  int checked = 0;
  for (int k = 0; k < kSmokePrograms; ++k) {
    Rng prng = rng.split();
    const ProgramSpec spec = generate_spec(prng);
    const GraphSpec gspec = random_graph_spec(prng, spec);
    const FuzzCase fc = make_case(spec, gspec);
    const auto fail = check_case(fc);
    ASSERT_FALSE(fail.has_value())
        << test::seed_banner(seed) << " program " << k << " ["
        << fail->check << "] " << fail->detail << "\ngraph "
        << gspec.describe() << "\n"
        << fc.source;
    ++checked;
  }
  EXPECT_EQ(checked, kSmokePrograms);
}

TEST(FuzzReducer, ShrinksToMinimalFailingCase) {
  // Synthetic predicate: "fails" iff the program still contains a product
  // aggregation. The reducer should strip everything else away.
  const std::uint64_t seed = test::effective_seed(0x4ED0CE);
  Rng rng(seed);
  for (int attempt = 0; attempt < 200; ++attempt) {
    Rng prng = rng.split();
    ProgramSpec spec = generate_spec(prng);
    GraphSpec gspec = random_graph_spec(prng, spec);
    const auto has_prod = [](const FuzzCase& fc) {
      return fc.source.find("* [") != std::string::npos;
    };
    if (!has_prod(make_case(spec, gspec))) continue;

    const ReducedCase r = reduce_case(spec, gspec, {1, 4}, has_prod);
    const FuzzCase reduced = make_case(r.spec, r.graph, r.workers);
    SCOPED_TRACE(test::seed_banner(seed) + "\n" + reduced.source);
    EXPECT_TRUE(has_prod(reduced)) << "reducer must preserve the failure";
    ASSERT_EQ(r.spec.stmts.size(), 1u);
    ASSERT_EQ(r.spec.stmts[0].patterns.size(), 1u);
    EXPECT_EQ(r.spec.stmts[0].patterns[0].kind, PatternKind::kProdClamp);
    EXPECT_EQ(r.workers.size(), 1u);
    EXPECT_NO_THROW(compile(reduced.source))
        << "reduced case must stay well-formed:\n"
        << reduced.source;
    return;  // one reduction exercise is enough
  }
  FAIL() << "no generated program contained a product aggregation";
}

TEST(FuzzSmoke, EmptyGraphRunsAllPatterns) {
  const std::uint64_t seed = test::effective_seed(0xE117);
  Rng rng(seed);
  GraphSpec empty;
  empty.kind = GraphSpec::Kind::kEmpty;
  empty.n = 0;
  empty.m = 0;
  for (int k = 0; k < 20; ++k) {
    Rng prng = rng.split();
    const ProgramSpec spec = generate_spec(prng);
    GraphSpec g = empty;
    g.directed = !spec.undirected;
    const FuzzCase fc = make_case(spec, g);
    const auto fail = check_case(fc);
    ASSERT_FALSE(fail.has_value())
        << test::seed_banner(seed) << " program " << k << " ["
        << fail->check << "] " << fail->detail << "\n"
        << fc.source;
  }
}

}  // namespace
}  // namespace deltav::dv::testing
