// Semantics tests for the BSP engine: superstep structure, vote-to-halt /
// reactivation, termination detection, combiners, statistics, scheduling
// modes, and determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>

#include "pregel/engine.h"
#include "test_util.h"

namespace deltav::pregel {
namespace {

struct SumCombiner {
  void operator()(int& acc, int in) const { acc += in; }
};

using IntEngine = Engine<int>;
using IntSumEngine = Engine<int, SumCombiner>;

TEST(Engine, AllVerticesActiveAtSuperstepZero) {
  IntEngine e(10, test::small_engine());
  std::atomic<int> ran{0};
  e.step([&](auto& ctx, VertexId, std::span<const int>) {
    ++ran;
    ctx.vote_to_halt();
  });
  EXPECT_EQ(ran.load(), 10);
  EXPECT_TRUE(e.done());
}

TEST(Engine, MessagesDeliveredNextSuperstep) {
  IntEngine e(4, test::small_engine());
  std::vector<int> got(4, -1);
  e.step([&](auto& ctx, VertexId v, std::span<const int> msgs) {
    EXPECT_TRUE(msgs.empty());
    if (v == 0) ctx.send(3, 42);
    ctx.vote_to_halt();
  });
  EXPECT_FALSE(e.done());  // message in flight
  e.step([&](auto& ctx, VertexId v, std::span<const int> msgs) {
    got[v] = msgs.empty() ? 0 : msgs[0];
    ctx.vote_to_halt();
  });
  // Only vertex 3 was reactivated.
  EXPECT_EQ(got[3], 42);
  EXPECT_EQ(got[0], -1);
  EXPECT_EQ(got[1], -1);
  EXPECT_TRUE(e.done());
}

TEST(Engine, HaltedVertexSkippedUntilMessage) {
  IntEngine e(2, test::small_engine(1));
  int runs_of_1 = 0;
  // Superstep 0: vertex 1 halts, vertex 0 stays active.
  e.step([&](auto& ctx, VertexId v, std::span<const int>) {
    if (v == 1) {
      ++runs_of_1;
      ctx.vote_to_halt();
    }
  });
  // Superstep 1: vertex 1 must not run.
  e.step([&](auto& ctx, VertexId v, std::span<const int>) {
    if (v == 1) ++runs_of_1;
    if (v == 0) {
      ctx.send(1, 5);
      ctx.vote_to_halt();
    }
  });
  EXPECT_EQ(runs_of_1, 1);
  // Superstep 2: message wakes vertex 1.
  e.step([&](auto& ctx, VertexId v, std::span<const int> msgs) {
    if (v == 1) {
      ++runs_of_1;
      EXPECT_EQ(msgs.size(), 1u);
      EXPECT_EQ(msgs[0], 5);
    }
    ctx.vote_to_halt();
  });
  EXPECT_EQ(runs_of_1, 2);
  EXPECT_TRUE(e.done());
}

TEST(Engine, NotHaltingKeepsVertexActive) {
  IntEngine e(1, test::small_engine(1));
  int runs = 0;
  for (int s = 0; s < 5; ++s)
    e.step([&](auto& ctx, VertexId, std::span<const int>) {
      ++runs;
      if (runs == 5) ctx.vote_to_halt();
    });
  EXPECT_EQ(runs, 5);
  EXPECT_TRUE(e.done());
}

TEST(Engine, RunDrivesToQuiescence) {
  // Token passing along a ring: each vertex forwards once then halts.
  const std::size_t n = 16;
  IntEngine e(n, test::small_engine());
  const RunStats& stats = e.run([&](auto& ctx, VertexId v,
                                    std::span<const int> msgs) {
    if (ctx.superstep() == 0) {
      if (v == 0) ctx.send(1, 1);
    } else {
      for (int m : msgs)
        if (v + 1 < n) ctx.send(static_cast<VertexId>(v + 1), m + 1);
    }
    ctx.vote_to_halt();
  });
  EXPECT_TRUE(e.done());
  EXPECT_EQ(stats.total_messages_sent(), n - 1);
  EXPECT_EQ(stats.num_supersteps(), n);  // 0..n-1
}

TEST(Engine, RunRespectsMaxSupersteps) {
  IntEngine e(1, test::small_engine(1));
  e.run([](auto&, VertexId, std::span<const int>) { /* never halts */ },
        7);
  EXPECT_EQ(e.superstep(), 7u);
  EXPECT_FALSE(e.done());
}

TEST(Engine, SendToOutOfRangeVertexThrows) {
  IntEngine e(3, test::small_engine(1));
  EXPECT_THROW(e.step([](auto& ctx, VertexId, std::span<const int>) {
    ctx.send(99, 1);
  }),
               CheckError);
}

TEST(Engine, CombinerReducesDeliveredNotSent) {
  const std::size_t n = 8;
  EngineOptions opts = test::small_engine(2);
  opts.use_combiner = true;
  IntSumEngine e(n, opts);
  // Everyone sends 1 to vertex 0.
  e.step([&](auto& ctx, VertexId, std::span<const int>) {
    ctx.send(0, 1);
    ctx.vote_to_halt();
  });
  int total = -1;
  e.step([&](auto& ctx, VertexId v, std::span<const int> msgs) {
    if (v == 0) {
      total = 0;
      for (int m : msgs) total += m;
    }
    ctx.vote_to_halt();
  });
  EXPECT_EQ(total, static_cast<int>(n));  // combined sum preserved
  const auto& s0 = e.stats().supersteps[0];
  EXPECT_EQ(s0.messages_sent, n);
  // Sender-side combining: at most one message per (worker, dst).
  EXPECT_LE(s0.messages_delivered, 2u);
}

TEST(Engine, CombinerDisabledDeliversAll) {
  const std::size_t n = 8;
  EngineOptions opts = test::small_engine(2);
  opts.use_combiner = false;
  IntSumEngine e(n, opts);
  e.step([&](auto& ctx, VertexId, std::span<const int>) {
    ctx.send(0, 1);
    ctx.vote_to_halt();
  });
  EXPECT_EQ(e.stats().supersteps[0].messages_delivered, n);
}

TEST(Engine, StatsCountBytesAndActiveVertices) {
  IntEngine e(4, test::small_engine(1));
  e.step([&](auto& ctx, VertexId v, std::span<const int>) {
    if (v < 2) ctx.send(3, 7);
    ctx.vote_to_halt();
  });
  const auto& s = e.stats().supersteps[0];
  EXPECT_EQ(s.active_vertices, 4u);
  EXPECT_EQ(s.messages_sent, 2u);
  EXPECT_EQ(s.bytes_sent, 2 * sizeof(int));
}

// §6.6 halt/wake accounting: vote_to_halt transitions and message-driven
// reactivations are counted per superstep.
TEST(Engine, StatsCountHaltAndWakeTransitions) {
  IntEngine e(4, test::small_engine(2));
  e.step([&](auto& ctx, VertexId v, std::span<const int>) {
    if (v == 0) ctx.send(3, 7);
    ctx.vote_to_halt();
  });
  const auto& s0 = e.stats().supersteps[0];
  EXPECT_EQ(s0.vertices_halted, 4u);  // everyone voted to halt
  EXPECT_EQ(s0.vertices_woken, 1u);   // the delivery to 3 reactivated it
  e.step([&](auto& ctx, VertexId v, std::span<const int> msgs) {
    EXPECT_EQ(v, 3u);
    EXPECT_EQ(msgs.size(), 1u);
    ctx.vote_to_halt();
  });
  const auto& s1 = e.stats().supersteps[1];
  EXPECT_EQ(s1.vertices_halted, 1u);
  EXPECT_EQ(s1.vertices_woken, 0u);
  EXPECT_TRUE(e.done());
  EXPECT_EQ(e.stats().total_vertices_halted(), 5u);
  EXPECT_EQ(e.stats().total_vertices_woken(), 1u);
}

// A wake is a halted→active *transition*: messages to an already-woken
// vertex must not count again, and a vertex that never halted contributes
// nothing to either counter.
TEST(Engine, WakeCountsOnlyHaltedToActiveTransitions) {
  IntEngine e(3, test::small_engine(1));
  // Superstep 0: vertices 1 and 2 halt; 0 stays active.
  e.step([&](auto& ctx, VertexId v, std::span<const int>) {
    if (v != 0) ctx.vote_to_halt();
  });
  EXPECT_EQ(e.stats().supersteps[0].vertices_halted, 2u);
  EXPECT_EQ(e.stats().supersteps[0].vertices_woken, 0u);
  // Superstep 1: vertex 0 double-messages the halted vertex 1 and halts.
  e.step([&](auto& ctx, VertexId v, std::span<const int>) {
    if (v == 0) {
      ctx.send(1, 1);
      ctx.send(1, 2);
      ctx.vote_to_halt();
    }
  });
  const auto& s1 = e.stats().supersteps[1];
  EXPECT_EQ(s1.vertices_halted, 1u);  // vertex 0
  EXPECT_EQ(s1.vertices_woken, 1u);   // vertex 1, woken once despite 2 msgs
  // Superstep 2: vertex 1 drains its inbox and re-halts.
  e.step([&](auto& ctx, VertexId v, std::span<const int> msgs) {
    EXPECT_EQ(v, 1u);
    EXPECT_EQ(msgs.size(), 2u);
    ctx.vote_to_halt();
  });
  EXPECT_EQ(e.stats().supersteps[2].vertices_halted, 1u);
  EXPECT_TRUE(e.done());
}

TEST(Engine, CrossMachineBytesTracked) {
  EngineOptions opts;
  opts.num_workers = 4;
  opts.cluster.machines = 4;
  opts.cluster.workers_per_machine = 1;
  opts.partition = PartitionScheme::kBlock;
  IntEngine e(4, opts);  // one vertex per worker per machine
  e.step([&](auto& ctx, VertexId v, std::span<const int>) {
    ctx.send(static_cast<VertexId>((v + 1) % 4), 1);  // all cross-machine
    ctx.vote_to_halt();
  });
  e.step([](auto& ctx, VertexId, std::span<const int>) {
    ctx.vote_to_halt();
  });
  EXPECT_EQ(e.stats().supersteps[0].cross_machine_bytes, 4 * sizeof(int));
  EXPECT_GT(e.stats().supersteps[0].sim_comm_seconds, 0.0);
}

TEST(Engine, IntraMachineTrafficIsFree) {
  EngineOptions opts;
  opts.num_workers = 2;
  opts.cluster.machines = 1;
  opts.cluster.workers_per_machine = 2;
  IntEngine e(8, opts);
  e.step([&](auto& ctx, VertexId v, std::span<const int>) {
    ctx.send(static_cast<VertexId>((v + 5) % 8), 1);
    ctx.vote_to_halt();
  });
  EXPECT_EQ(e.stats().supersteps[0].cross_machine_bytes, 0u);
}

TEST(Engine, ActivateAllWakesEveryone) {
  IntEngine e(6, test::small_engine());
  e.step([](auto& ctx, VertexId, std::span<const int>) {
    ctx.vote_to_halt();
  });
  EXPECT_TRUE(e.done());
  e.activate_all();
  EXPECT_FALSE(e.done());
  std::atomic<int> ran{0};
  e.step([&](auto& ctx, VertexId, std::span<const int>) {
    ++ran;
    ctx.vote_to_halt();
  });
  EXPECT_EQ(ran.load(), 6);
}

TEST(Engine, WorkerExceptionPropagates) {
  IntEngine e(4, test::small_engine(2));
  EXPECT_THROW(e.step([](auto&, VertexId v, std::span<const int>) {
    if (v == 3) throw std::runtime_error("worker boom");
  }),
               std::runtime_error);
}

// Scheduling-mode equivalence: the same computation under kScanAll and
// kWorkQueue produces the same results and the same message counts.
TEST(Engine, WorkQueueMatchesScanAll) {
  const auto g = test::small_undirected(77);
  auto run_mode = [&](ScheduleMode mode) {
    EngineOptions opts = test::small_engine(4);
    opts.schedule = mode;
    Engine<std::uint32_t> e(g.num_vertices(), opts);
    std::vector<std::uint32_t> comp(g.num_vertices());
    for (std::size_t v = 0; v < comp.size(); ++v)
      comp[v] = static_cast<std::uint32_t>(v);
    e.run([&](auto& ctx, VertexId v, std::span<const std::uint32_t> msgs) {
      std::uint32_t best = comp[v];
      for (auto m : msgs) best = std::min(best, m);
      const bool changed = best < comp[v];
      if (changed) comp[v] = best;
      if (ctx.superstep() == 0 || changed)
        for (auto u : g.neighbors(v)) ctx.send(u, comp[v]);
      ctx.vote_to_halt();
    });
    return std::make_pair(comp, e.stats().total_messages_sent());
  };
  const auto [scan_comp, scan_msgs] = run_mode(ScheduleMode::kScanAll);
  const auto [queue_comp, queue_msgs] = run_mode(ScheduleMode::kWorkQueue);
  EXPECT_EQ(scan_comp, queue_comp);
  EXPECT_EQ(scan_msgs, queue_msgs);
}

TEST(Engine, DeterministicAcrossRunsSameWorkerCount) {
  auto run_once = [] {
    const auto g = test::small_directed(31);
    EngineOptions opts = test::small_engine(4);
    Engine<double> e(g.num_vertices(), opts);
    std::vector<double> val(g.num_vertices(), 1.0);
    e.run(
        [&](auto& ctx, VertexId v, std::span<const double> msgs) {
          double sum = 0;
          for (double m : msgs) sum += m;
          if (ctx.superstep() > 0) val[v] = sum * 0.5 + 0.1;
          if (ctx.superstep() < 6) {
            for (auto u : g.out_neighbors(v)) ctx.send(u, val[v]);
          } else {
            ctx.vote_to_halt();
          }
        },
        20);
    return val;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);  // bitwise equality
}

TEST(Engine, SingleWorkerWorks) {
  IntEngine e(5, test::small_engine(1));
  std::atomic<int> ran{0};
  e.step([&](auto& ctx, VertexId, std::span<const int>) {
    ++ran;
    ctx.vote_to_halt();
  });
  EXPECT_EQ(ran.load(), 5);
}

TEST(Engine, ManyWorkersMoreThanVertices) {
  IntEngine e(3, test::small_engine(8));
  std::atomic<int> ran{0};
  e.step([&](auto& ctx, VertexId, std::span<const int>) {
    ++ran;
    ctx.vote_to_halt();
  });
  EXPECT_EQ(ran.load(), 3);
}


TEST(Engine, CustomWireSizeTraitsDriveByteCounters) {
  struct TinyTraits {
    static std::size_t wire_size(const int&) { return 3; }
  };
  Engine<int, NoCombiner, TinyTraits> e(4, test::small_engine(1));
  e.step([](auto& ctx, VertexId v, std::span<const int>) {
    if (v == 0) ctx.send(1, 42);
    ctx.vote_to_halt();
  });
  EXPECT_EQ(e.stats().supersteps[0].bytes_sent, 3u);
}

TEST(Engine, RunStatsSummaryMentionsTotals) {
  IntEngine e(4, test::small_engine(1));
  e.step([](auto& ctx, VertexId v, std::span<const int>) {
    if (v == 0) ctx.send(1, 1);
    ctx.vote_to_halt();
  });
  const std::string s = e.stats().summary();
  EXPECT_NE(s.find("supersteps=1"), std::string::npos);
  EXPECT_NE(s.find("msgs=1"), std::string::npos);
}

TEST(Engine, DroppedMessagesRollUpInRunStats) {
  IntEngine e(3, test::small_engine(1));
  e.mark_deleted(2);
  e.step([](auto& ctx, VertexId v, std::span<const int>) {
    if (v == 0) ctx.send(2, 1);
    ctx.vote_to_halt();
  });
  EXPECT_EQ(e.stats().total_messages_dropped(), 1u);
  EXPECT_EQ(e.stats().total_messages_delivered(), 0u);
}

// A vertex that deletes itself from inside compute() while messages to it
// are already in flight: the messages must be dropped (and counted), the
// halt books must stay consistent, and the vertex must never run again —
// not even via activate_all().
TEST(Engine, MarkDeletedMidComputeDropsInFlightMessages) {
  IntEngine e(4, test::small_engine(2));
  std::atomic<int> runs_of_2{0};
  e.step([&](auto& ctx, VertexId v, std::span<const int>) {
    if (v == 0 || v == 1) ctx.send(2, 7);  // in flight toward 2
    if (v == 2) {
      ++runs_of_2;
      e.mark_deleted(2);
      return;  // no vote_to_halt: deletion alone must settle the books
    }
    ctx.vote_to_halt();
  });
  EXPECT_EQ(e.stats().supersteps[0].messages_sent, 2u);
  EXPECT_EQ(e.stats().supersteps[0].messages_dropped, 2u);
  EXPECT_EQ(e.stats().supersteps[0].messages_delivered, 0u);
  EXPECT_TRUE(e.is_deleted(2));
  EXPECT_EQ(e.num_unhalted(), 0u);
  EXPECT_TRUE(e.done());  // dropped messages are not "pending"

  e.activate_all();
  std::atomic<int> ran{0};
  e.step([&](auto& ctx, VertexId v, std::span<const int>) {
    ++ran;
    if (v == 2) ++runs_of_2;
    ctx.vote_to_halt();
  });
  EXPECT_EQ(ran.load(), 3);  // everyone but the deleted vertex
  EXPECT_EQ(runs_of_2.load(), 1);
  EXPECT_TRUE(e.done());
}

// Messages sent to a vertex *after* it deleted itself in the same
// superstep are dropped too: deletion is visible to the exchange phase
// regardless of compute ordering across workers.
TEST(Engine, MessagesToSelfDeletedVertexNeverWakeIt) {
  IntEngine e(2, test::small_engine(1));
  int runs_of_1 = 0;
  e.step([&](auto& ctx, VertexId v, std::span<const int>) {
    if (v == 0) {
      ctx.send(1, 1);
      ctx.vote_to_halt();
    } else {
      ++runs_of_1;
      e.mark_deleted(1);
    }
  });
  EXPECT_TRUE(e.done());
  EXPECT_EQ(e.stats().total_messages_dropped(), 1u);
  // Nothing left to run: the dropped message must not have reactivated 1.
  e.step([&](auto&, VertexId v, std::span<const int>) {
    if (v == 1) ++runs_of_1;
  });
  EXPECT_EQ(runs_of_1, 1);
}

// activate_all() under kWorkQueue must produce exactly one queue entry per
// live vertex, even when a vertex is already scheduled by a pending
// message delivery, and must leave deleted vertices out of the queue.
TEST(Engine, ActivateAllUnderWorkQueueNoDuplicateEntries) {
  const std::size_t n = 6;
  EngineOptions opts = test::small_engine(2);
  opts.schedule = ScheduleMode::kWorkQueue;
  IntEngine e(n, opts);
  e.mark_deleted(5);
  // Superstep 0: vertex 0 messages vertex 1 (scheduling it for step 1),
  // everyone halts.
  e.step([&](auto& ctx, VertexId v, std::span<const int>) {
    if (v == 0) ctx.send(1, 1);
    ctx.vote_to_halt();
  });
  EXPECT_FALSE(e.done());
  // Vertex 1 is now both message-scheduled and re-activated here; it must
  // still run exactly once.
  e.activate_all();
  std::vector<std::atomic<int>> runs(n);
  e.step([&](auto& ctx, VertexId v, std::span<const int>) {
    ++runs[v];
    ctx.vote_to_halt();
  });
  for (std::size_t v = 0; v + 1 < n; ++v)
    EXPECT_EQ(runs[v].load(), 1) << "vertex " << v;
  EXPECT_EQ(runs[n - 1].load(), 0) << "deleted vertex must not be queued";
  EXPECT_TRUE(e.done());

  // Back-to-back activate_all() calls are idempotent.
  e.activate_all();
  e.activate_all();
  std::atomic<int> ran{0};
  e.step([&](auto& ctx, VertexId, std::span<const int>) {
    ++ran;
    ctx.vote_to_halt();
  });
  EXPECT_EQ(ran.load(), static_cast<int>(n) - 1);
}

// Full fixpoint computation (min-label propagation) at the degenerate
// worker configurations: 1 worker and far more workers than vertices must
// both reach the reference answer computed at the default worker count.
TEST(Engine, FullComputationAtDegenerateWorkerCounts) {
  const auto g = test::small_undirected(123);
  auto run_with = [&](int workers) {
    EngineOptions opts = test::small_engine(workers);
    Engine<std::uint32_t> e(g.num_vertices(), opts);
    std::vector<std::uint32_t> comp(g.num_vertices());
    for (std::size_t v = 0; v < comp.size(); ++v)
      comp[v] = static_cast<std::uint32_t>(v);
    e.run([&](auto& ctx, VertexId v, std::span<const std::uint32_t> msgs) {
      std::uint32_t best = comp[v];
      for (auto m : msgs) best = std::min(best, m);
      const bool changed = best < comp[v];
      if (changed) comp[v] = best;
      if (ctx.superstep() == 0 || changed)
        for (auto u : g.neighbors(v)) ctx.send(u, comp[v]);
      ctx.vote_to_halt();
    });
    EXPECT_TRUE(e.done());
    return comp;
  };
  const auto reference = run_with(4);
  EXPECT_EQ(run_with(1), reference);
  const int many = static_cast<int>(g.num_vertices()) + 13;
  EXPECT_EQ(run_with(many), reference);
}

// An engine over zero vertices is legal: immediately done, and stepping /
// activate_all are harmless no-ops under both schedulers.
TEST(Engine, ZeroVertexEngine) {
  for (const ScheduleMode mode :
       {ScheduleMode::kScanAll, ScheduleMode::kWorkQueue}) {
    EngineOptions opts = test::small_engine(3);
    opts.schedule = mode;
    IntEngine e(0, opts);
    EXPECT_TRUE(e.done());
    EXPECT_EQ(e.num_unhalted(), 0u);
    std::atomic<int> ran{0};
    e.step([&](auto&, VertexId, std::span<const int>) { ++ran; });
    EXPECT_EQ(ran.load(), 0);
    e.activate_all();
    EXPECT_TRUE(e.done());
    const RunStats& stats =
        e.run([&](auto&, VertexId, std::span<const int>) { ++ran; }, 10);
    EXPECT_EQ(ran.load(), 0);
    EXPECT_EQ(stats.total_messages_sent(), 0u);
  }
}

// ---- capacity growth and frontier control (streaming epochs) -----------

TEST(Engine, GrowAddsHaltedVerticesUnderBothSchedulers) {
  for (const ScheduleMode mode :
       {ScheduleMode::kScanAll, ScheduleMode::kWorkQueue}) {
    EngineOptions opts = test::small_engine();
    opts.schedule = mode;
    IntEngine e(4, opts);
    e.step([&](auto& ctx, VertexId, std::span<const int>) {
      ctx.vote_to_halt();
    });
    ASSERT_TRUE(e.done());

    e.grow(7);
    // New ids exist but arrive halted: nothing runs until activated.
    EXPECT_TRUE(e.done());
    EXPECT_EQ(e.num_unhalted(), 0u);

    e.activate(6);
    std::vector<int> ran;
    e.step([&](auto& ctx, VertexId v, std::span<const int>) {
      ran.push_back(static_cast<int>(v));
      ctx.send(2, 99);  // old ids remain addressable
      ctx.vote_to_halt();
    });
    ASSERT_EQ(ran.size(), 1u);
    EXPECT_EQ(ran[0], 6);
    std::vector<int> got(7, -1);
    e.step([&](auto& ctx, VertexId v, std::span<const int> msgs) {
      got[v] = msgs.empty() ? 0 : msgs[0];
      ctx.vote_to_halt();
    });
    EXPECT_EQ(got[2], 99);
    EXPECT_TRUE(e.done());
  }
}

TEST(Engine, GrowPreservesUnhaltedVertices) {
  IntEngine e(3, test::small_engine(2));
  // Vertex 1 stays active (does not vote to halt).
  e.step([&](auto& ctx, VertexId v, std::span<const int>) {
    if (v != 1) ctx.vote_to_halt();
  });
  ASSERT_EQ(e.num_unhalted(), 1u);
  e.grow(5);
  EXPECT_EQ(e.num_unhalted(), 1u);
  std::vector<int> ran;
  e.step([&](auto& ctx, VertexId v, std::span<const int>) {
    ran.push_back(static_cast<int>(v));
    ctx.vote_to_halt();
  });
  ASSERT_EQ(ran.size(), 1u);
  EXPECT_EQ(ran[0], 1);
}

TEST(Engine, GrowKeepsDeletedVerticesDeleted) {
  IntEngine e(3, test::small_engine(1));
  e.mark_deleted(1);
  e.grow(6);
  EXPECT_TRUE(e.is_deleted(1));
  e.activate(1);  // silently refused, as before growth
  std::atomic<int> ran{0};
  e.step([&](auto& ctx, VertexId, std::span<const int>) {
    ++ran;
    ctx.vote_to_halt();
  });
  EXPECT_EQ(ran.load(), 2);  // 0 and 2 (superstep zero runs non-deleted)
}

TEST(Engine, GrowRejectsShrinkAndInFlightMessages) {
  IntEngine e(4, test::small_engine(1));
  EXPECT_THROW(e.grow(3), CheckError);
  e.step([&](auto& ctx, VertexId v, std::span<const int>) {
    if (v == 0) ctx.send(1, 5);
    ctx.vote_to_halt();
  });
  // Message to vertex 1 is queued for the next superstep.
  EXPECT_THROW(e.grow(8), CheckError);
}

TEST(Engine, HaltAllThenActivateWakesExactFrontier) {
  for (const ScheduleMode mode :
       {ScheduleMode::kScanAll, ScheduleMode::kWorkQueue}) {
    EngineOptions opts = test::small_engine();
    opts.schedule = mode;
    IntEngine e(8, opts);
    e.halt_all();
    EXPECT_TRUE(e.done());
    EXPECT_EQ(e.num_unhalted(), 0u);
    e.activate(2);
    e.activate(5);
    std::vector<int> ran;
    std::mutex mu;
    e.step([&](auto& ctx, VertexId v, std::span<const int>) {
      std::lock_guard<std::mutex> lk(mu);
      ran.push_back(static_cast<int>(v));
      ctx.vote_to_halt();
    });
    std::sort(ran.begin(), ran.end());
    ASSERT_EQ(ran.size(), 2u);
    EXPECT_EQ(ran[0], 2);
    EXPECT_EQ(ran[1], 5);
    EXPECT_TRUE(e.done());
  }
}

}  // namespace
}  // namespace deltav::pregel
