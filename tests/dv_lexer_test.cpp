#include <gtest/gtest.h>

#include "dv/lexer.h"

namespace deltav::dv {
namespace {

std::vector<Token> lex(const std::string& src) {
  return Lexer(src).tokenize();
}

std::vector<Tok> kinds(const std::string& src) {
  std::vector<Tok> out;
  for (const auto& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEof) {
  const auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, Tok::kEof);
}

TEST(Lexer, KeywordsAndIdentifiers) {
  const auto k = kinds("init step iter until let local in if then else foo");
  const std::vector<Tok> expected = {
      Tok::kInit, Tok::kStep, Tok::kIter, Tok::kUntil, Tok::kLet,
      Tok::kLocal, Tok::kIn, Tok::kIf, Tok::kThen, Tok::kElse,
      Tok::kIdent, Tok::kEof};
  EXPECT_EQ(k, expected);
}

TEST(Lexer, NumericLiterals) {
  const auto toks = lex("42 3.25 1e3 2.5e-2");
  EXPECT_EQ(toks[0].kind, Tok::kIntLit);
  EXPECT_EQ(toks[0].int_val, 42);
  EXPECT_EQ(toks[1].kind, Tok::kFloatLit);
  EXPECT_DOUBLE_EQ(toks[1].float_val, 3.25);
  EXPECT_EQ(toks[2].kind, Tok::kFloatLit);
  EXPECT_DOUBLE_EQ(toks[2].float_val, 1000.0);
  EXPECT_DOUBLE_EQ(toks[3].float_val, 0.025);
}

TEST(Lexer, GraphExpressions) {
  const auto k = kinds("#in #out #neighbors");
  EXPECT_EQ(k[0], Tok::kHashIn);
  EXPECT_EQ(k[1], Tok::kHashOut);
  EXPECT_EQ(k[2], Tok::kHashNeighbors);
}

TEST(Lexer, UnknownGraphExpressionRejected) {
  EXPECT_THROW(lex("#sideways"), CompileError);
}

TEST(Lexer, OperatorsAndCompounds) {
  const auto k = kinds("+ - * / && || < > >= <= == != = <- | . not");
  const std::vector<Tok> expected = {
      Tok::kPlus, Tok::kMinus, Tok::kStar, Tok::kSlash, Tok::kAndAnd,
      Tok::kOrOr, Tok::kLt, Tok::kGt, Tok::kGe, Tok::kLe, Tok::kEqEq,
      Tok::kNe, Tok::kAssign, Tok::kArrow, Tok::kBar, Tok::kDot,
      Tok::kNot, Tok::kEof};
  EXPECT_EQ(k, expected);
}

TEST(Lexer, CommentsAreSkipped) {
  const auto k = kinds("a -- rest of line\nb // also comment\nc");
  const std::vector<Tok> expected = {Tok::kIdent, Tok::kIdent, Tok::kIdent,
                                     Tok::kEof};
  EXPECT_EQ(k, expected);
}

TEST(Lexer, LocationsTracked) {
  const auto toks = lex("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[0].loc.col, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
  EXPECT_EQ(toks[1].loc.col, 3);
}

TEST(Lexer, StrayAmpersandRejected) { EXPECT_THROW(lex("a & b"), CompileError); }

TEST(Lexer, StrayBangRejected) { EXPECT_THROW(lex("!x"), CompileError); }

TEST(Lexer, UnknownCharacterRejected) { EXPECT_THROW(lex("a @ b"), CompileError); }

TEST(Lexer, MalformedExponentRejected) { EXPECT_THROW(lex("1e+"), CompileError); }

TEST(Lexer, BuiltinsAndTypes) {
  const auto k = kinds("graphSize infty vertexId stable int bool float "
                       "true false min max param");
  const std::vector<Tok> expected = {
      Tok::kGraphSize, Tok::kInfty, Tok::kVertexId, Tok::kStable,
      Tok::kTypeInt, Tok::kTypeBool, Tok::kTypeFloat, Tok::kTrue,
      Tok::kFalse, Tok::kMin, Tok::kMax, Tok::kParam, Tok::kEof};
  EXPECT_EQ(k, expected);
}

TEST(Lexer, IdentifierWithUnderscoreAndDigits) {
  const auto toks = lex("old_msg2");
  EXPECT_EQ(toks[0].kind, Tok::kIdent);
  EXPECT_EQ(toks[0].text, "old_msg2");
}

}  // namespace
}  // namespace deltav::dv
