#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <sstream>
#include <utility>

#include "common/rng.h"
#include "graph/csr_graph.h"
#include "graph/dynamic_graph.h"
#include "graph/datasets.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace deltav::graph {
namespace {

// ---------------------------------------------------------- GraphBuilder

TEST(GraphBuilder, DirectedBasics) {
  GraphBuilder b(4, /*directed=*/true);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  const CsrGraph g = b.build();
  EXPECT_TRUE(g.directed());
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_arcs(), 3u);
  EXPECT_EQ(g.num_logical_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(0), 0u);
  EXPECT_EQ(g.in_degree(3), 1u);
  EXPECT_EQ(g.out_neighbors(0)[0], 1u);
  EXPECT_EQ(g.out_neighbors(0)[1], 2u);
  EXPECT_EQ(g.in_neighbors(3)[0], 2u);
}

TEST(GraphBuilder, UndirectedMirrorsArcs) {
  GraphBuilder b(3, /*directed=*/false);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const CsrGraph g = b.build();
  EXPECT_FALSE(g.directed());
  EXPECT_EQ(g.num_arcs(), 4u);
  EXPECT_EQ(g.num_logical_edges(), 2u);
  EXPECT_EQ(g.out_degree(1), 2u);
  // in == out for undirected.
  EXPECT_EQ(g.in_neighbors(1).size(), g.out_neighbors(1).size());
}

TEST(GraphBuilder, SelfLoopsDroppedByDefault) {
  GraphBuilder b(2, true);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  EXPECT_EQ(b.build().num_arcs(), 1u);
}

TEST(GraphBuilder, DeduplicateRemovesParallelEdges) {
  GraphBuilder b(2, true);
  b.deduplicate(true);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  EXPECT_EQ(b.build().num_arcs(), 1u);
}

TEST(GraphBuilder, UndirectedDedupCollapsesBothOrientations) {
  GraphBuilder b(2, false);
  b.deduplicate(true);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  EXPECT_EQ(b.build().num_logical_edges(), 1u);
}

TEST(GraphBuilder, WeightsAlignedWithTargets) {
  GraphBuilder b(3, true);
  b.keep_weights(true);
  b.add_edge(0, 2, 2.5);
  b.add_edge(0, 1, 1.5);
  const CsrGraph g = b.build();
  ASSERT_TRUE(g.weighted());
  // Adjacency is sorted by target: (0→1, 1.5), (0→2, 2.5).
  EXPECT_EQ(g.out_neighbors(0)[0], 1u);
  EXPECT_DOUBLE_EQ(g.out_weights(0)[0], 1.5);
  EXPECT_DOUBLE_EQ(g.out_weights(0)[1], 2.5);
  // In-weights mirror.
  EXPECT_DOUBLE_EQ(g.in_weights(2)[0], 2.5);
}

TEST(GraphBuilder, OutOfRangeEdgeThrows) {
  GraphBuilder b(2, true);
  EXPECT_THROW(b.add_edge(0, 5), CheckError);
}

TEST(GraphBuilder, AdjacencySorted) {
  GraphBuilder b(5, true);
  b.add_edge(0, 4);
  b.add_edge(0, 1);
  b.add_edge(0, 3);
  const CsrGraph g = b.build();
  const auto nbrs = g.out_neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

// -------------------------------------------------------------- invariants

void check_csr_invariants(const CsrGraph& g) {
  // Every arc's reverse appears in the opposite adjacency.
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.out_neighbors(static_cast<VertexId>(v))) {
      const auto in = g.in_neighbors(u);
      EXPECT_TRUE(std::find(in.begin(), in.end(), v) != in.end())
          << "arc " << v << "->" << u << " missing from in-adjacency";
    }
  }
  // Degree sums match arc count.
  std::size_t out_sum = 0, in_sum = 0;
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    out_sum += g.out_degree(static_cast<VertexId>(v));
    in_sum += g.in_degree(static_cast<VertexId>(v));
  }
  EXPECT_EQ(out_sum, g.num_arcs());
  EXPECT_EQ(in_sum, g.num_arcs());
}

TEST(CsrGraph, InvariantsHoldOnRandomDirected) {
  check_csr_invariants(rmat(128, 512, 3));
}

TEST(CsrGraph, InvariantsHoldOnRandomUndirected) {
  RmatOptions o;
  o.directed = false;
  check_csr_invariants(rmat(128, 400, 4, o));
}

TEST(CsrGraph, SummaryMentionsShape) {
  const auto g = path(5, true);
  const std::string s = g.summary();
  EXPECT_NE(s.find("directed"), std::string::npos);
  EXPECT_NE(s.find("|V|=5"), std::string::npos);
  EXPECT_NE(s.find("|E|=4"), std::string::npos);
}

// -------------------------------------------------------------- generators

TEST(Generators, RmatProducesRequestedSize) {
  const auto g = rmat(256, 1024, 5, {.deduplicate = false});
  EXPECT_EQ(g.num_vertices(), 256u);
  // Self-loops are dropped, so slightly fewer arcs than requested.
  EXPECT_GT(g.num_arcs(), 900u);
  EXPECT_LE(g.num_arcs(), 1024u);
}

TEST(Generators, RmatDeterministicPerSeed) {
  const auto a = rmat(128, 512, 42);
  const auto b = rmat(128, 512, 42);
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  for (std::size_t v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.out_neighbors(static_cast<VertexId>(v));
    const auto nb = b.out_neighbors(static_cast<VertexId>(v));
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

TEST(Generators, RmatSkewProducesHubs) {
  // With Graph500 skew the max degree should far exceed the average.
  const auto g = rmat(1024, 8192, 6, {.deduplicate = false});
  const double avg = static_cast<double>(g.num_arcs()) /
                     static_cast<double>(g.num_vertices());
  EXPECT_GT(static_cast<double>(g.max_out_degree()), 4 * avg);
}

TEST(Generators, RmatNonPowerOfTwoVertices) {
  const auto g = rmat(100, 300, 7);
  EXPECT_EQ(g.num_vertices(), 100u);
  check_csr_invariants(g);
}

TEST(Generators, RmatWeighted) {
  RmatOptions o;
  o.weighted = true;
  o.min_weight = 2.0;
  o.max_weight = 3.0;
  const auto g = rmat(64, 256, 8, o);
  ASSERT_TRUE(g.weighted());
  for (std::size_t v = 0; v < g.num_vertices(); ++v)
    for (double w : g.out_weights(static_cast<VertexId>(v))) {
      EXPECT_GE(w, 2.0);
      EXPECT_LT(w, 3.0);
    }
}

TEST(Generators, ErdosRenyiShape) {
  const auto g = erdos_renyi(100, 400, 9);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_GT(g.num_arcs(), 300u);  // dedup may remove a few
  check_csr_invariants(g);
}

TEST(Generators, BarabasiAlbertConnectedAndUndirected) {
  const auto g = barabasi_albert(200, 2, 10);
  EXPECT_FALSE(g.directed());
  // Preferential attachment from a clique keeps the graph connected:
  // every vertex has degree >= 1.
  for (std::size_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_GE(g.out_degree(static_cast<VertexId>(v)), 1u) << v;
}

TEST(Generators, PathCycleStarGridComplete) {
  EXPECT_EQ(path(5).num_logical_edges(), 4u);
  EXPECT_EQ(cycle(5).num_logical_edges(), 5u);
  EXPECT_EQ(star(6).num_vertices(), 7u);
  EXPECT_EQ(star(6).out_degree(0), 6u);
  EXPECT_EQ(grid(3, 4).num_vertices(), 12u);
  EXPECT_EQ(grid(3, 4).num_logical_edges(), 3u * 3 + 2u * 4);
  EXPECT_EQ(complete(5).num_logical_edges(), 10u);
  EXPECT_EQ(complete(4, true).num_arcs(), 12u);
}


TEST(Generators, WebCrawlHasCoreAndPeriphery) {
  graph::WebCrawlOptions o;
  o.periphery_fraction = 0.4;
  o.chain_length = 3;
  const auto g = web_crawl(1000, 6000, 13, o);
  EXPECT_EQ(g.num_vertices(), 1000u);
  EXPECT_TRUE(g.directed());
  // Periphery vertices (ids >= core) are pendant: out-degree exactly 1,
  // in-degree <= 1.
  const std::size_t core = 600;
  for (std::size_t v = core; v < 1000; ++v) {
    EXPECT_EQ(g.out_degree(static_cast<VertexId>(v)), 1u) << v;
    EXPECT_LE(g.in_degree(static_cast<VertexId>(v)), 1u) << v;
  }
  // Chain tails land in the core.
  for (std::size_t v = core; v < 1000; ++v)
    for (VertexId u : g.out_neighbors(static_cast<VertexId>(v)))
      EXPECT_TRUE(u < core || u == static_cast<VertexId>(v) + 1);
  check_csr_invariants(g);
}

TEST(Generators, WebCrawlValidation) {
  graph::WebCrawlOptions o;
  o.periphery_fraction = 1.5;
  EXPECT_THROW(web_crawl(100, 500, 1, o), CheckError);
  o.periphery_fraction = 0.99;  // core of 1 vertex
  EXPECT_THROW(web_crawl(100, 500, 1, o), CheckError);
}

TEST(Generators, WebCrawlDeterministic) {
  const auto a = web_crawl(512, 3000, 77);
  const auto b = web_crawl(512, 3000, 77);
  EXPECT_EQ(a.num_arcs(), b.num_arcs());
  for (std::size_t v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.out_neighbors(static_cast<VertexId>(v));
    const auto nb = b.out_neighbors(static_cast<VertexId>(v));
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

// ------------------------------------------------------------ edge_list_io

TEST(EdgeListIo, ParsesWithCommentsAndSparseIds) {
  std::istringstream in(
      "# a comment\n"
      "% another\n"
      "10 20\n"
      "20 30\n"
      "\n"
      "10 30\n");
  const auto g = read_edge_list(in, {.directed = true});
  EXPECT_EQ(g.num_vertices(), 3u);  // densified
  EXPECT_EQ(g.num_arcs(), 3u);
}

TEST(EdgeListIo, WeightedParse) {
  std::istringstream in("0 1 2.5\n1 2 0.5\n");
  const auto g = read_edge_list(in, {.directed = true, .weighted = true});
  ASSERT_TRUE(g.weighted());
  EXPECT_DOUBLE_EQ(g.out_weights(0)[0], 2.5);
}

TEST(EdgeListIo, MalformedLineReportsLineNumber) {
  std::istringstream in("0 1\nbroken\n");
  try {
    read_edge_list(in, {});
    FAIL();
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(EdgeListIo, RoundTripPreservesStructure) {
  // R-MAT leaves some vertices isolated; the edge-list format only records
  // endpoints, so compare arc counts for it and exact structure on a graph
  // where every vertex appears.
  const auto g = rmat(64, 200, 11);
  std::ostringstream out;
  write_edge_list(g, out);
  std::istringstream in(out.str());
  const auto g2 = read_edge_list(in, {.directed = true});
  EXPECT_LE(g2.num_vertices(), g.num_vertices());
  EXPECT_EQ(g2.num_arcs(), g.num_arcs());

  const auto c = cycle(17, /*directed=*/true);
  std::ostringstream out2;
  write_edge_list(c, out2);
  std::istringstream in2(out2.str());
  const auto c2 = read_edge_list(in2, {.directed = true});
  EXPECT_EQ(c2.num_vertices(), c.num_vertices());
  EXPECT_EQ(c2.num_arcs(), c.num_arcs());
}

TEST(EdgeListIo, UndirectedRoundTripWritesEachEdgeOnce) {
  const auto g = cycle(6);
  std::ostringstream out;
  write_edge_list(g, out);
  std::istringstream in(out.str());
  const auto g2 = read_edge_list(in, {.directed = false});
  EXPECT_EQ(g2.num_logical_edges(), 6u);
}

TEST(EdgeListIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/file.el", {}), CheckError);
}

// ---------------------------------------------------------------- datasets

TEST(Datasets, FourPaperStandIns) {
  const auto& specs = paper_datasets();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "wikipedia-s");
  EXPECT_TRUE(specs[0].directed);
  EXPECT_FALSE(specs[2].directed);  // facebook-s
}

TEST(Datasets, ScaledMaterialization) {
  const auto g = make_dataset("livejournal-ug-s", 0.01);
  EXPECT_FALSE(g.directed());
  EXPECT_NEAR(static_cast<double>(g.num_vertices()), 131072 * 0.01, 64);
}

TEST(Datasets, WeightedOverride) {
  const auto g = make_dataset("wikipedia-s", 0.005, /*weighted=*/true);
  EXPECT_TRUE(g.weighted());
  EXPECT_TRUE(g.directed());
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(dataset_spec("not-a-dataset"), CheckError);
}

// ----------------------------------------------- builder mutation policy

TEST(GraphBuilder, DedupKeepsLastWeightForDuplicateEdges) {
  GraphBuilder b(3, /*directed=*/true);
  b.deduplicate(true).keep_weights(true);
  b.add_edge(0, 1, 1.0);
  b.add_edge(0, 2, 9.0);
  b.add_edge(0, 1, 5.0);  // re-add: the later weight must win
  const CsrGraph g = b.build();
  ASSERT_EQ(g.out_degree(0), 2u);
  EXPECT_DOUBLE_EQ(g.out_weights(0)[0], 5.0);
  EXPECT_DOUBLE_EQ(g.out_weights(0)[1], 9.0);
}

TEST(GraphBuilder, UndirectedDedupLastWriteWinsAcrossOrientations) {
  GraphBuilder b(2, /*directed=*/false);
  b.deduplicate(true).keep_weights(true);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 0, 7.0);  // same undirected edge, later weight
  const CsrGraph g = b.build();
  ASSERT_EQ(g.num_logical_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.out_weights(0)[0], 7.0);
  EXPECT_DOUBLE_EQ(g.out_weights(1)[0], 7.0);
}

// ------------------------------------------------------------ DynamicGraph

CsrGraph dyn_base(bool directed = true) {
  GraphBuilder b(5, directed);
  b.keep_weights(true);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 2.0);
  b.add_edge(1, 3, 3.0);
  b.add_edge(3, 4, 4.0);
  return b.build();
}

/// The dynamic view and a from-scratch CSR of the same topology must agree
/// arc for arc, weight for weight.
void expect_same_topology(const DynamicGraph& dyn, const CsrGraph& want) {
  ASSERT_EQ(dyn.num_vertices(), want.num_vertices());
  EXPECT_EQ(dyn.num_arcs(), want.num_arcs());
  for (std::size_t vv = 0; vv < want.num_vertices(); ++vv) {
    const auto v = static_cast<VertexId>(vv);
    const auto dn = dyn.out_neighbors(v);
    const auto wn = want.out_neighbors(v);
    ASSERT_EQ(dn.size(), wn.size()) << "out-degree of " << v;
    for (std::size_t i = 0; i < dn.size(); ++i) EXPECT_EQ(dn[i], wn[i]);
    const auto di = dyn.in_neighbors(v);
    const auto wi = want.in_neighbors(v);
    ASSERT_EQ(di.size(), wi.size()) << "in-degree of " << v;
    for (std::size_t i = 0; i < di.size(); ++i) EXPECT_EQ(di[i], wi[i]);
    if (want.weighted()) {
      const auto dw = dyn.out_weights(v);
      const auto ww = want.out_weights(v);
      for (std::size_t i = 0; i < dw.size(); ++i)
        EXPECT_DOUBLE_EQ(dw[i], ww[i]);
    }
  }
}

TEST(DynamicGraph, UntouchedVerticesReadTheBase) {
  const DynamicGraph dyn(dyn_base());
  EXPECT_EQ(dyn.overlay_vertices(), 0u);
  expect_same_topology(dyn, dyn_base());
  EXPECT_TRUE(dyn.has_arc(1, 2));
  EXPECT_DOUBLE_EQ(dyn.arc_weight(1, 2), 2.0);
  EXPECT_FALSE(dyn.has_arc(2, 1));
}

TEST(DynamicGraph, PlanResolvesNetEffect) {
  const DynamicGraph dyn(dyn_base());
  MutationBatch b;
  b.insert_edge(0, 2, 5.0);   // new
  b.insert_edge(1, 2, 9.0);   // weight 2 → 9
  b.remove_edge(3, 4);        // removal
  b.remove_edge(2, 0);        // absent → redundant
  b.insert_edge(2, 2);        // self-loop → dropped
  b.insert_edge(4, 0, 1.0);   // insert…
  b.remove_edge(4, 0);        // …then delete in the same batch: net no-op
  const GraphDelta d = dyn.plan(b);
  EXPECT_EQ(d.edges_inserted, 1u);
  EXPECT_EQ(d.edges_removed, 1u);
  EXPECT_EQ(d.weights_changed, 1u);
  EXPECT_EQ(d.self_loops_dropped, 1u);
  EXPECT_GE(d.redundant_ops, 1u);
  EXPECT_TRUE(d.has_removals);
  EXPECT_TRUE(d.has_weight_changes);
  // Net-cancelled 4→0 must not appear as an arc change.
  for (const ArcChange& c : d.arcs) EXPECT_FALSE(c.src == 4 && c.dst == 0);
  // touched: endpoints of real changes only, sorted unique.
  EXPECT_TRUE(std::is_sorted(d.touched.begin(), d.touched.end()));
}

TEST(DynamicGraph, CommitMatchesFromScratchBuild) {
  DynamicGraph dyn(dyn_base());
  MutationBatch b;
  b.insert_edge(0, 2, 5.0);
  b.insert_edge(1, 2, 9.0);
  b.remove_edge(3, 4);
  dyn.commit(dyn.plan(b));

  GraphBuilder want(5, true);
  want.keep_weights(true);
  want.add_edge(0, 1, 1.0);
  want.add_edge(0, 2, 5.0);
  want.add_edge(1, 2, 9.0);
  want.add_edge(1, 3, 3.0);
  expect_same_topology(dyn, want.build());
  EXPECT_GT(dyn.overlay_vertices(), 0u);
}

TEST(DynamicGraph, VertexAddAndDetach) {
  DynamicGraph dyn(dyn_base());
  MutationBatch b;
  b.add_vertices = 2;  // ids 5, 6
  b.insert_edge(5, 6, 1.5);
  b.detach_vertices.push_back(1);  // drops 0→1, 1→2, 1→3
  const GraphDelta d = dyn.plan(b);
  EXPECT_EQ(d.new_num_vertices, 7u);
  ASSERT_EQ(d.detached.size(), 1u);
  dyn.commit(d);
  EXPECT_EQ(dyn.num_vertices(), 7u);
  EXPECT_EQ(dyn.out_degree(1), 0u);
  EXPECT_EQ(dyn.in_degree(1), 0u);
  EXPECT_EQ(dyn.out_degree(0), 0u);  // its only arc went to 1
  EXPECT_TRUE(dyn.has_arc(5, 6));
  EXPECT_DOUBLE_EQ(dyn.arc_weight(5, 6), 1.5);
  EXPECT_EQ(dyn.num_arcs(), 2u);  // 3→4 and 5→6
  // Detached ids stay valid and may reconnect later.
  MutationBatch re;
  re.insert_edge(1, 5, 2.0);
  dyn.commit(dyn.plan(re));
  EXPECT_TRUE(dyn.has_arc(1, 5));
}

TEST(DynamicGraph, UndirectedMutationsMirrorBothDirections) {
  DynamicGraph dyn(dyn_base(/*directed=*/false));
  MutationBatch b;
  b.insert_edge(0, 4, 2.5);
  b.remove_edge(2, 1);  // stored as 1↔2; removable via either orientation
  const GraphDelta d = dyn.plan(b);
  // Each logical edge contributes two stored-arc changes.
  EXPECT_EQ(d.arcs.size(), 4u);
  dyn.commit(d);
  EXPECT_TRUE(dyn.has_arc(0, 4));
  EXPECT_TRUE(dyn.has_arc(4, 0));
  EXPECT_FALSE(dyn.has_arc(1, 2));
  EXPECT_FALSE(dyn.has_arc(2, 1));
  EXPECT_DOUBLE_EQ(dyn.arc_weight(4, 0), 2.5);
}

TEST(DynamicGraph, MaterializeAndCompactAgree) {
  DynamicGraph dyn(dyn_base());
  MutationBatch b;
  b.insert_edge(2, 0, 6.0);
  b.remove_edge(1, 3);
  b.add_vertices = 1;
  b.insert_edge(5, 0, 7.0);
  dyn.commit(dyn.plan(b));
  const CsrGraph snap = dyn.materialize();
  EXPECT_GT(dyn.overlay_fraction(), 0.0);
  dyn.compact();
  EXPECT_EQ(dyn.overlay_vertices(), 0u);
  expect_same_topology(dyn, snap);
  // Mutating after compaction keeps working.
  MutationBatch b2;
  b2.insert_edge(4, 5, 1.0);
  dyn.commit(dyn.plan(b2));
  EXPECT_TRUE(dyn.has_arc(4, 5));
}

TEST(DynamicGraph, PlanOnStaleSnapshotRejectedByCommit) {
  DynamicGraph dyn(dyn_base());
  MutationBatch grow;
  grow.add_vertices = 1;
  const GraphDelta d = dyn.plan(grow);
  dyn.commit(d);
  EXPECT_THROW(dyn.commit(d), CheckError);  // |V| no longer matches
}

TEST(DynamicGraph, RandomizedCommitsMatchRebuild) {
  // Apply random batches; after each, materialize() must equal a CSR
  // rebuilt from the tracked edge set.
  const std::uint64_t seed = 0x5eedu;
  std::uint64_t state = seed;
  auto next = [&] { return state = splitmix64(state); };
  DynamicGraph dyn(rmat(32, 96, 5));
  std::map<std::pair<VertexId, VertexId>, double> edges;
  for (std::size_t v = 0; v < 32; ++v)
    for (const VertexId u :
         dyn.out_neighbors(static_cast<VertexId>(v)))
      edges[{static_cast<VertexId>(v), u}] = 1.0;

  std::size_t n = dyn.num_vertices();
  for (int round = 0; round < 10; ++round) {
    MutationBatch b;
    for (int k = 0; k < 8; ++k) {
      const auto u = static_cast<VertexId>(next() % n);
      const auto v = static_cast<VertexId>(next() % n);
      if (u == v) continue;
      if (next() % 2) {
        b.insert_edge(u, v);
        edges[{u, v}] = 1.0;
      } else {
        b.remove_edge(u, v);
        edges.erase({u, v});
      }
    }
    dyn.commit(dyn.plan(b));
    GraphBuilder want(n, /*directed=*/true);
    for (const auto& [e, w] : edges) want.add_edge(e.first, e.second, w);
    expect_same_topology(dyn, want.build());
    if (round == 5) dyn.compact();
  }
}

}  // namespace
}  // namespace deltav::graph
