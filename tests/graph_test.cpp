#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "graph/csr_graph.h"
#include "graph/datasets.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace deltav::graph {
namespace {

// ---------------------------------------------------------- GraphBuilder

TEST(GraphBuilder, DirectedBasics) {
  GraphBuilder b(4, /*directed=*/true);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  const CsrGraph g = b.build();
  EXPECT_TRUE(g.directed());
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_arcs(), 3u);
  EXPECT_EQ(g.num_logical_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(0), 0u);
  EXPECT_EQ(g.in_degree(3), 1u);
  EXPECT_EQ(g.out_neighbors(0)[0], 1u);
  EXPECT_EQ(g.out_neighbors(0)[1], 2u);
  EXPECT_EQ(g.in_neighbors(3)[0], 2u);
}

TEST(GraphBuilder, UndirectedMirrorsArcs) {
  GraphBuilder b(3, /*directed=*/false);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const CsrGraph g = b.build();
  EXPECT_FALSE(g.directed());
  EXPECT_EQ(g.num_arcs(), 4u);
  EXPECT_EQ(g.num_logical_edges(), 2u);
  EXPECT_EQ(g.out_degree(1), 2u);
  // in == out for undirected.
  EXPECT_EQ(g.in_neighbors(1).size(), g.out_neighbors(1).size());
}

TEST(GraphBuilder, SelfLoopsDroppedByDefault) {
  GraphBuilder b(2, true);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  EXPECT_EQ(b.build().num_arcs(), 1u);
}

TEST(GraphBuilder, DeduplicateRemovesParallelEdges) {
  GraphBuilder b(2, true);
  b.deduplicate(true);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  EXPECT_EQ(b.build().num_arcs(), 1u);
}

TEST(GraphBuilder, UndirectedDedupCollapsesBothOrientations) {
  GraphBuilder b(2, false);
  b.deduplicate(true);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  EXPECT_EQ(b.build().num_logical_edges(), 1u);
}

TEST(GraphBuilder, WeightsAlignedWithTargets) {
  GraphBuilder b(3, true);
  b.keep_weights(true);
  b.add_edge(0, 2, 2.5);
  b.add_edge(0, 1, 1.5);
  const CsrGraph g = b.build();
  ASSERT_TRUE(g.weighted());
  // Adjacency is sorted by target: (0→1, 1.5), (0→2, 2.5).
  EXPECT_EQ(g.out_neighbors(0)[0], 1u);
  EXPECT_DOUBLE_EQ(g.out_weights(0)[0], 1.5);
  EXPECT_DOUBLE_EQ(g.out_weights(0)[1], 2.5);
  // In-weights mirror.
  EXPECT_DOUBLE_EQ(g.in_weights(2)[0], 2.5);
}

TEST(GraphBuilder, OutOfRangeEdgeThrows) {
  GraphBuilder b(2, true);
  EXPECT_THROW(b.add_edge(0, 5), CheckError);
}

TEST(GraphBuilder, AdjacencySorted) {
  GraphBuilder b(5, true);
  b.add_edge(0, 4);
  b.add_edge(0, 1);
  b.add_edge(0, 3);
  const CsrGraph g = b.build();
  const auto nbrs = g.out_neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

// -------------------------------------------------------------- invariants

void check_csr_invariants(const CsrGraph& g) {
  // Every arc's reverse appears in the opposite adjacency.
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.out_neighbors(static_cast<VertexId>(v))) {
      const auto in = g.in_neighbors(u);
      EXPECT_TRUE(std::find(in.begin(), in.end(), v) != in.end())
          << "arc " << v << "->" << u << " missing from in-adjacency";
    }
  }
  // Degree sums match arc count.
  std::size_t out_sum = 0, in_sum = 0;
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    out_sum += g.out_degree(static_cast<VertexId>(v));
    in_sum += g.in_degree(static_cast<VertexId>(v));
  }
  EXPECT_EQ(out_sum, g.num_arcs());
  EXPECT_EQ(in_sum, g.num_arcs());
}

TEST(CsrGraph, InvariantsHoldOnRandomDirected) {
  check_csr_invariants(rmat(128, 512, 3));
}

TEST(CsrGraph, InvariantsHoldOnRandomUndirected) {
  RmatOptions o;
  o.directed = false;
  check_csr_invariants(rmat(128, 400, 4, o));
}

TEST(CsrGraph, SummaryMentionsShape) {
  const auto g = path(5, true);
  const std::string s = g.summary();
  EXPECT_NE(s.find("directed"), std::string::npos);
  EXPECT_NE(s.find("|V|=5"), std::string::npos);
  EXPECT_NE(s.find("|E|=4"), std::string::npos);
}

// -------------------------------------------------------------- generators

TEST(Generators, RmatProducesRequestedSize) {
  const auto g = rmat(256, 1024, 5, {.deduplicate = false});
  EXPECT_EQ(g.num_vertices(), 256u);
  // Self-loops are dropped, so slightly fewer arcs than requested.
  EXPECT_GT(g.num_arcs(), 900u);
  EXPECT_LE(g.num_arcs(), 1024u);
}

TEST(Generators, RmatDeterministicPerSeed) {
  const auto a = rmat(128, 512, 42);
  const auto b = rmat(128, 512, 42);
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  for (std::size_t v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.out_neighbors(static_cast<VertexId>(v));
    const auto nb = b.out_neighbors(static_cast<VertexId>(v));
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

TEST(Generators, RmatSkewProducesHubs) {
  // With Graph500 skew the max degree should far exceed the average.
  const auto g = rmat(1024, 8192, 6, {.deduplicate = false});
  const double avg = static_cast<double>(g.num_arcs()) /
                     static_cast<double>(g.num_vertices());
  EXPECT_GT(static_cast<double>(g.max_out_degree()), 4 * avg);
}

TEST(Generators, RmatNonPowerOfTwoVertices) {
  const auto g = rmat(100, 300, 7);
  EXPECT_EQ(g.num_vertices(), 100u);
  check_csr_invariants(g);
}

TEST(Generators, RmatWeighted) {
  RmatOptions o;
  o.weighted = true;
  o.min_weight = 2.0;
  o.max_weight = 3.0;
  const auto g = rmat(64, 256, 8, o);
  ASSERT_TRUE(g.weighted());
  for (std::size_t v = 0; v < g.num_vertices(); ++v)
    for (double w : g.out_weights(static_cast<VertexId>(v))) {
      EXPECT_GE(w, 2.0);
      EXPECT_LT(w, 3.0);
    }
}

TEST(Generators, ErdosRenyiShape) {
  const auto g = erdos_renyi(100, 400, 9);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_GT(g.num_arcs(), 300u);  // dedup may remove a few
  check_csr_invariants(g);
}

TEST(Generators, BarabasiAlbertConnectedAndUndirected) {
  const auto g = barabasi_albert(200, 2, 10);
  EXPECT_FALSE(g.directed());
  // Preferential attachment from a clique keeps the graph connected:
  // every vertex has degree >= 1.
  for (std::size_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_GE(g.out_degree(static_cast<VertexId>(v)), 1u) << v;
}

TEST(Generators, PathCycleStarGridComplete) {
  EXPECT_EQ(path(5).num_logical_edges(), 4u);
  EXPECT_EQ(cycle(5).num_logical_edges(), 5u);
  EXPECT_EQ(star(6).num_vertices(), 7u);
  EXPECT_EQ(star(6).out_degree(0), 6u);
  EXPECT_EQ(grid(3, 4).num_vertices(), 12u);
  EXPECT_EQ(grid(3, 4).num_logical_edges(), 3u * 3 + 2u * 4);
  EXPECT_EQ(complete(5).num_logical_edges(), 10u);
  EXPECT_EQ(complete(4, true).num_arcs(), 12u);
}


TEST(Generators, WebCrawlHasCoreAndPeriphery) {
  graph::WebCrawlOptions o;
  o.periphery_fraction = 0.4;
  o.chain_length = 3;
  const auto g = web_crawl(1000, 6000, 13, o);
  EXPECT_EQ(g.num_vertices(), 1000u);
  EXPECT_TRUE(g.directed());
  // Periphery vertices (ids >= core) are pendant: out-degree exactly 1,
  // in-degree <= 1.
  const std::size_t core = 600;
  for (std::size_t v = core; v < 1000; ++v) {
    EXPECT_EQ(g.out_degree(static_cast<VertexId>(v)), 1u) << v;
    EXPECT_LE(g.in_degree(static_cast<VertexId>(v)), 1u) << v;
  }
  // Chain tails land in the core.
  for (std::size_t v = core; v < 1000; ++v)
    for (VertexId u : g.out_neighbors(static_cast<VertexId>(v)))
      EXPECT_TRUE(u < core || u == static_cast<VertexId>(v) + 1);
  check_csr_invariants(g);
}

TEST(Generators, WebCrawlValidation) {
  graph::WebCrawlOptions o;
  o.periphery_fraction = 1.5;
  EXPECT_THROW(web_crawl(100, 500, 1, o), CheckError);
  o.periphery_fraction = 0.99;  // core of 1 vertex
  EXPECT_THROW(web_crawl(100, 500, 1, o), CheckError);
}

TEST(Generators, WebCrawlDeterministic) {
  const auto a = web_crawl(512, 3000, 77);
  const auto b = web_crawl(512, 3000, 77);
  EXPECT_EQ(a.num_arcs(), b.num_arcs());
  for (std::size_t v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.out_neighbors(static_cast<VertexId>(v));
    const auto nb = b.out_neighbors(static_cast<VertexId>(v));
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

// ------------------------------------------------------------ edge_list_io

TEST(EdgeListIo, ParsesWithCommentsAndSparseIds) {
  std::istringstream in(
      "# a comment\n"
      "% another\n"
      "10 20\n"
      "20 30\n"
      "\n"
      "10 30\n");
  const auto g = read_edge_list(in, {.directed = true});
  EXPECT_EQ(g.num_vertices(), 3u);  // densified
  EXPECT_EQ(g.num_arcs(), 3u);
}

TEST(EdgeListIo, WeightedParse) {
  std::istringstream in("0 1 2.5\n1 2 0.5\n");
  const auto g = read_edge_list(in, {.directed = true, .weighted = true});
  ASSERT_TRUE(g.weighted());
  EXPECT_DOUBLE_EQ(g.out_weights(0)[0], 2.5);
}

TEST(EdgeListIo, MalformedLineReportsLineNumber) {
  std::istringstream in("0 1\nbroken\n");
  try {
    read_edge_list(in, {});
    FAIL();
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(EdgeListIo, RoundTripPreservesStructure) {
  // R-MAT leaves some vertices isolated; the edge-list format only records
  // endpoints, so compare arc counts for it and exact structure on a graph
  // where every vertex appears.
  const auto g = rmat(64, 200, 11);
  std::ostringstream out;
  write_edge_list(g, out);
  std::istringstream in(out.str());
  const auto g2 = read_edge_list(in, {.directed = true});
  EXPECT_LE(g2.num_vertices(), g.num_vertices());
  EXPECT_EQ(g2.num_arcs(), g.num_arcs());

  const auto c = cycle(17, /*directed=*/true);
  std::ostringstream out2;
  write_edge_list(c, out2);
  std::istringstream in2(out2.str());
  const auto c2 = read_edge_list(in2, {.directed = true});
  EXPECT_EQ(c2.num_vertices(), c.num_vertices());
  EXPECT_EQ(c2.num_arcs(), c.num_arcs());
}

TEST(EdgeListIo, UndirectedRoundTripWritesEachEdgeOnce) {
  const auto g = cycle(6);
  std::ostringstream out;
  write_edge_list(g, out);
  std::istringstream in(out.str());
  const auto g2 = read_edge_list(in, {.directed = false});
  EXPECT_EQ(g2.num_logical_edges(), 6u);
}

TEST(EdgeListIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/file.el", {}), CheckError);
}

// ---------------------------------------------------------------- datasets

TEST(Datasets, FourPaperStandIns) {
  const auto& specs = paper_datasets();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "wikipedia-s");
  EXPECT_TRUE(specs[0].directed);
  EXPECT_FALSE(specs[2].directed);  // facebook-s
}

TEST(Datasets, ScaledMaterialization) {
  const auto g = make_dataset("livejournal-ug-s", 0.01);
  EXPECT_FALSE(g.directed());
  EXPECT_NEAR(static_cast<double>(g.num_vertices()), 131072 * 0.01, 64);
}

TEST(Datasets, WeightedOverride) {
  const auto g = make_dataset("wikipedia-s", 0.005, /*weighted=*/true);
  EXPECT_TRUE(g.weighted());
  EXPECT_TRUE(g.directed());
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(dataset_spec("not-a-dataset"), CheckError);
}

}  // namespace
}  // namespace deltav::graph
