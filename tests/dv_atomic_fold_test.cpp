// Adversarial stress tests for the lock-free atomic-fold fast path
// (runtime/atomic_fold.h, DESIGN.md "Fold paths").
//
// The worst case for the atomic path is a hub vertex whose pending slot
// is hammered by every worker lane at once — concurrent fetch-adds for
// integer sums, CAS-min/CAS-max loops for the idempotent operators. These
// tests build exactly that shape (a star graph, many workers), repeat the
// contended runs 100×, and require bit-identical agreement with the
// buffered message path and with a sequential oracle every single time.
// They also pin the frontier-bitmap wake semantics: the set of vertices
// computing in each superstep must match the exchange-scan wake set of
// the buffered path exactly (observed through the per-superstep
// active_vertices sequence).
//
// Labelled `atomic_fold` so the TSan CI job replays the contention under
// ThreadSanitizer: a torn fold or a missing happens-before between the
// compute fork-join and the single-threaded drain fails there.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algorithms/connected_components.h"
#include "dv/obs/obs.h"
#include "dv/programs/programs.h"
#include "dv/streaming/stream_session.h"
#include "graph/dynamic_graph.h"
#include "graph/generators.h"
#include "test_util.h"

namespace deltav {
namespace {

using dv::FoldPath;
using dv::Value;
using test::compile_dv;
using test::small_engine;

/// Integer sum gossip: every vertex replaces its value with the sum of
/// its neighbors'. On a star this alternates between all leaves folding
/// into the hub (maximum slot contention) and the hub's delta fanning
/// out to every leaf (maximum bitmap spread). Values stay well inside
/// int64 for the sizes used here.
constexpr const char* kSumGossip = R"(
param steps : int;
init {
  local x : int = vertexId
};
iter i {
  let s : int = + [ u.x | u <- #neighbors ] in
  x = s
} until { i >= steps }
)";

dv::DvRunResult run_fold(const dv::CompiledProgram& cp,
                         const graph::CsrGraph& g, FoldPath path,
                         std::map<std::string, Value> params = {},
                         int workers = 8,
                         dv::ExecTier tier = dv::ExecTier::kVm) {
  dv::DvRunOptions o;
  o.engine = small_engine(workers);
  o.params = std::move(params);
  o.fold_path = path;
  o.tier = tier;
  return dv::run_program(cp, g, o);
}

/// Sequential oracle for kSumGossip.
std::vector<std::int64_t> sum_gossip_oracle(const graph::CsrGraph& g,
                                            int steps) {
  std::vector<std::int64_t> x(g.num_vertices());
  for (std::size_t v = 0; v < x.size(); ++v)
    x[v] = static_cast<std::int64_t>(v);
  for (int i = 0; i < steps; ++i) {
    std::vector<std::int64_t> next(x.size(), 0);
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
      for (graph::VertexId u : g.neighbors(v)) next[v] += x[u];
    x = std::move(next);
  }
  return x;
}

// ---------------------------------------------------------------------------
// fetch-add contention
// ---------------------------------------------------------------------------

TEST(AtomicFold, HubFetchAddContentionMatchesBufferedAndOracle) {
  // 255 leaves all folding into vertex 0's single pending slot, split
  // across 8 worker lanes. steps=10 keeps the growth inside int64.
  const auto g = graph::star(255, /*directed=*/false);
  const auto cp = compile_dv(kSumGossip);
  const auto params =
      std::map<std::string, Value>{{"steps", Value::of_int(10)}};

  const auto oracle = sum_gossip_oracle(g, 10);
  const auto buffered = run_fold(cp, g, FoldPath::kBuffered, params);
  const auto base = buffered.field_as_int("x");
  ASSERT_EQ(base.size(), oracle.size());
  for (std::size_t v = 0; v < oracle.size(); ++v)
    ASSERT_EQ(base[v], oracle[v]) << "buffered vs oracle at vertex " << v;

  for (int rep = 0; rep < 100; ++rep) {
    const auto tier = rep % 2 == 0 ? dv::ExecTier::kVm : dv::ExecTier::kTree;
    const auto atomic = run_fold(cp, g, FoldPath::kAtomic, params, 8, tier);
    ASSERT_EQ(atomic.stats.total_messages_sent(), 0u)
        << "rep " << rep << ": atomic path sent messages";
    ASSERT_EQ(atomic.supersteps, buffered.supersteps) << "rep " << rep;
    const auto got = atomic.field_as_int("x");
    for (std::size_t v = 0; v < oracle.size(); ++v)
      ASSERT_EQ(got[v], oracle[v])
          << "rep " << rep << " (" << dv::exec_tier_name(tier)
          << "): atomic diverged at vertex " << v;
  }
}

// ---------------------------------------------------------------------------
// CAS-min / CAS-max contention
// ---------------------------------------------------------------------------

TEST(AtomicFold, HubCasMaxContentionMatchesBuffered) {
  // Max gossip on an undirected star: superstep 1 is 255 concurrent
  // CAS-max proposals against the hub's slot, most of which lose the
  // race and must retry.
  const auto g = graph::star(255, /*directed=*/false);
  const auto cp = compile_dv(dv::programs::kMaxGossip);

  const auto buffered = run_fold(cp, g, FoldPath::kBuffered);
  const auto base = buffered.field_as_int("big");
  for (std::size_t v = 0; v < base.size(); ++v)
    ASSERT_EQ(base[v], 255) << "vertex " << v;

  for (int rep = 0; rep < 100; ++rep) {
    const auto atomic = run_fold(cp, g, FoldPath::kAtomic);
    ASSERT_EQ(atomic.stats.total_messages_sent(), 0u) << "rep " << rep;
    ASSERT_EQ(atomic.supersteps, buffered.supersteps) << "rep " << rep;
    const auto got = atomic.field_as_int("big");
    for (std::size_t v = 0; v < base.size(); ++v)
      ASSERT_EQ(got[v], base[v]) << "rep " << rep << " vertex " << v;
  }
}

TEST(AtomicFold, CasMinMatchesUnionFindOracle) {
  const auto g = test::small_undirected(11);
  const auto oracle = algorithms::connected_components_oracle(g);
  const auto cp = compile_dv(dv::programs::kConnectedComponents);

  const auto buffered = run_fold(cp, g, FoldPath::kBuffered);
  for (int rep = 0; rep < 100; ++rep) {
    const auto atomic = run_fold(cp, g, FoldPath::kAtomic);
    ASSERT_EQ(atomic.stats.total_messages_sent(), 0u) << "rep " << rep;
    const auto got = atomic.field_as_int("comp");
    ASSERT_EQ(got.size(), oracle.size());
    for (std::size_t v = 0; v < oracle.size(); ++v)
      ASSERT_EQ(got[v], static_cast<std::int64_t>(oracle[v]))
          << "rep " << rep << " vertex " << v;
    ASSERT_EQ(atomic.supersteps, buffered.supersteps) << "rep " << rep;
  }
}

// ---------------------------------------------------------------------------
// frontier bitmap vs exchange scan
// ---------------------------------------------------------------------------

TEST(AtomicFold, FrontierBitmapWakesExactlyTheExchangeScanSet) {
  // The buffered path wakes receivers during the exchange scan; the
  // atomic path wakes them from the frontier bitmap in the drain. The two
  // wake sets must be identical, which the per-superstep active_vertices
  // sequence observes exactly: a vertex computes in superstep k+1 iff it
  // was active or woken in superstep k.
  const auto g = graph::rmat(256, 1024, 23,
                             [] {
                               graph::RmatOptions o;
                               o.directed = false;
                               return o;
                             }());
  const auto cp = compile_dv(dv::programs::kConnectedComponents);

  const auto buffered = run_fold(cp, g, FoldPath::kBuffered);
  const auto atomic = run_fold(cp, g, FoldPath::kAtomic);

  ASSERT_EQ(atomic.supersteps, buffered.supersteps);
  ASSERT_EQ(atomic.stats.supersteps.size(), buffered.stats.supersteps.size());
  for (std::size_t s = 0; s < buffered.stats.supersteps.size(); ++s) {
    EXPECT_EQ(atomic.stats.supersteps[s].active_vertices,
              buffered.stats.supersteps[s].active_vertices)
        << "superstep " << s << ": wake sets diverged";
  }
  const auto a = atomic.field_as_int("comp");
  const auto b = buffered.field_as_int("comp");
  for (std::size_t v = 0; v < a.size(); ++v) EXPECT_EQ(a[v], b[v]);
}

// ---------------------------------------------------------------------------
// float + stays buffered unless opted in
// ---------------------------------------------------------------------------

TEST(AtomicFold, FloatSumRequiresOptIn) {
  const auto g = test::small_directed();
  const auto cp = compile_dv(dv::programs::kPageRank);
  const auto params =
      std::map<std::string, Value>{{"steps", Value::of_int(19)}};

  dv::DvRunOptions o;
  o.engine = small_engine(4);
  o.params = params;

  // Default: float + is not bit-exact under concurrent re-association,
  // so PageRank's site stays buffered even with fold_path = kAtomic.
  o.fold_path = FoldPath::kAtomic;
  dv::DvRunner buffered_runner(cp, g, o);
  const auto buffered = buffered_runner.converge();
  EXPECT_FALSE(buffered_runner.atomic_path());
  EXPECT_GT(buffered.stats.total_messages_sent(), 0u);

  // Opt-in: the site routes atomic, sends nothing, and agrees to ε.
  o.atomic_float = true;
  dv::DvRunner atomic_runner(cp, g, o);
  const auto atomic = atomic_runner.converge();
  EXPECT_TRUE(atomic_runner.atomic_path());
  EXPECT_EQ(atomic.stats.total_messages_sent(), 0u);
  test::expect_close(atomic.field_as_double("vl"),
                     buffered.field_as_double("vl"), 1e-9);
}

// ---------------------------------------------------------------------------
// streaming epochs route through the same slots
// ---------------------------------------------------------------------------

TEST(AtomicFold, StreamingEpochsFoldAtomically) {
  graph::RmatOptions ro;
  ro.directed = false;
  const auto base = graph::rmat(128, 512, 31, ro);
  const auto cp = compile_dv(dv::programs::kConnectedComponents);

  const auto run_session = [&](FoldPath path) {
    dv::streaming::SessionOptions so;
    so.run.engine = small_engine(8);
    so.run.fold_path = path;
    dv::streaming::DvStreamSession s(cp, base, so);
    s.converge();
    std::vector<dv::streaming::SessionEpoch> epochs;
    // Edge inserts between fixed pairs: each batch perturbs the min-label
    // landscape and must warm-apply (CC admits insert-only streams).
    for (int b = 0; b < 3; ++b) {
      graph::MutationBatch mb;
      mb.insert_edge(static_cast<graph::VertexId>(3 + 7 * b),
                     static_cast<graph::VertexId>(90 - 11 * b));
      mb.insert_edge(static_cast<graph::VertexId>(40 + b),
                     static_cast<graph::VertexId>(70 + 2 * b));
      epochs.push_back(s.apply(mb));
    }
    return std::make_pair(s.result(), epochs);
  };

  const auto [buf_result, buf_epochs] = run_session(FoldPath::kBuffered);
  const auto [atm_result, atm_epochs] = run_session(FoldPath::kAtomic);

  ASSERT_EQ(atm_epochs.size(), buf_epochs.size());
  for (std::size_t e = 0; e < buf_epochs.size(); ++e) {
    EXPECT_TRUE(atm_epochs[e].warm) << "epoch " << e;
    EXPECT_TRUE(atm_epochs[e].stats.atomic_path) << "epoch " << e;
    EXPECT_FALSE(buf_epochs[e].stats.atomic_path) << "epoch " << e;
    EXPECT_EQ(atm_epochs[e].stats.supersteps, buf_epochs[e].stats.supersteps)
        << "epoch " << e;
    EXPECT_EQ(atm_epochs[e].stats.messages, 0u) << "epoch " << e;
  }
  // At least one epoch's Δ-patches must actually have folded atomically.
  std::uint64_t folds = 0;
  for (const auto& ep : atm_epochs) folds += ep.stats.atomic_folds;
  EXPECT_GT(folds, 0u);

  const auto a = atm_result.field_as_int("comp");
  const auto b = buf_result.field_as_int("comp");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t v = 0; v < a.size(); ++v)
    EXPECT_EQ(a[v], b[v]) << "vertex " << v;
}

// ---------------------------------------------------------------------------
// the dv.atomic_folds counter
// ---------------------------------------------------------------------------

TEST(AtomicFold, ObsCounterCountsFolds) {
  const auto g = graph::star(63, /*directed=*/false);
  const auto cp = compile_dv(dv::programs::kConnectedComponents);

  obs::Collector col;
  dv::DvRunOptions o;
  o.engine = small_engine(4);
  o.collector = &col;
  o.fold_path = FoldPath::kAtomic;
  dv::run_program(cp, g, o);
  const auto snap = col.metrics.snapshot();
  EXPECT_GT(snap.counters.at("dv.atomic_folds"), 0u);

  obs::Collector col2;
  o.collector = &col2;
  o.fold_path = FoldPath::kBuffered;
  dv::run_program(cp, g, o);
  EXPECT_EQ(col2.metrics.snapshot().counters.at("dv.atomic_folds"), 0u);
}

}  // namespace
}  // namespace deltav
