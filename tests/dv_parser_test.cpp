#include <gtest/gtest.h>

#include "dv/lexer.h"
#include "dv/parser.h"
#include "dv/programs/programs.h"

namespace deltav::dv {
namespace {

Program parse(const std::string& src) {
  Lexer lexer(src);
  Parser parser(lexer.tokenize());
  return parser.parse_program();
}

ExprPtr parse_expr(const std::string& src) {
  Lexer lexer(src);
  Parser parser(lexer.tokenize());
  return parser.parse_expression_only();
}

TEST(Parser, MinimalProgram) {
  const auto p = parse("init { local x : int = 0 }; step { x = 1 }");
  ASSERT_EQ(p.stmts.size(), 1u);
  EXPECT_EQ(p.stmts[0].kind, Stmt::Kind::kStep);
  EXPECT_EQ(p.init->kind, ExprKind::kLocalDecl);
}

TEST(Parser, IterWithUntil) {
  const auto p = parse(
      "init { local x : int = 0 }; iter i { x = 1 } until { i >= 3 }");
  ASSERT_EQ(p.stmts.size(), 1u);
  EXPECT_EQ(p.stmts[0].kind, Stmt::Kind::kIter);
  EXPECT_EQ(p.stmts[0].iter_var, "i");
  ASSERT_NE(p.stmts[0].until, nullptr);
}

TEST(Parser, MultipleStatements) {
  const auto p = parse(
      "init { local x : int = 0 };"
      "step { x = 1 };"
      "iter i { x = 2 } until { i >= 1 };"
      "step { x = 3 }");
  EXPECT_EQ(p.stmts.size(), 3u);
}

TEST(Parser, Params) {
  const auto p = parse(
      "param source : int;"
      "param tol : float;"
      "init { local x : int = 0 }; step { x = 1 }");
  ASSERT_EQ(p.params.size(), 2u);
  EXPECT_EQ(p.params[0].name, "source");
  EXPECT_EQ(p.params[0].type, Type::kInt);
  EXPECT_EQ(p.params[1].type, Type::kFloat);
}

TEST(Parser, AggregationForm) {
  const auto e = parse_expr("+ [ u.pr | u <- #neighbors ]");
  ASSERT_EQ(e->kind, ExprKind::kAgg);
  EXPECT_EQ(e->agg_op, AggOp::kSum);
  EXPECT_EQ(e->dir, GraphDir::kNeighbors);
  EXPECT_EQ(e->kids[0]->kind, ExprKind::kNeighborField);
  EXPECT_EQ(e->kids[0]->name, "pr");
}

TEST(Parser, AllAggregationOperators) {
  EXPECT_EQ(parse_expr("+ [ u.a | u <- #in ]")->agg_op, AggOp::kSum);
  EXPECT_EQ(parse_expr("* [ u.a | u <- #in ]")->agg_op, AggOp::kProd);
  EXPECT_EQ(parse_expr("min [ u.a | u <- #in ]")->agg_op, AggOp::kMin);
  EXPECT_EQ(parse_expr("max [ u.a | u <- #in ]")->agg_op, AggOp::kMax);
  EXPECT_EQ(parse_expr("&& [ u.a | u <- #in ]")->agg_op, AggOp::kAnd);
  EXPECT_EQ(parse_expr("|| [ u.a | u <- #in ]")->agg_op, AggOp::kOr);
}

TEST(Parser, AggregationWithEdgeWeight) {
  const auto e = parse_expr("min [ u.dist + u.edge | u <- #in ]");
  ASSERT_EQ(e->kind, ExprKind::kAgg);
  const Expr& plus = *e->kids[0];
  EXPECT_EQ(plus.kind, ExprKind::kBinary);
  EXPECT_EQ(plus.kids[1]->kind, ExprKind::kEdgeWeight);
}

TEST(Parser, AggregationWithCustomBinder) {
  const auto e = parse_expr("+ [ w.val * 2 | w <- #out ]");
  ASSERT_EQ(e->kind, ExprKind::kAgg);
  EXPECT_EQ(e->name, "w");
}

TEST(Parser, DegreeForm) {
  const auto e = parse_expr("|#neighbors|");
  EXPECT_EQ(e->kind, ExprKind::kDegree);
  EXPECT_EQ(e->dir, GraphDir::kNeighbors);
}

TEST(Parser, DegreeInsideExpression) {
  const auto e = parse_expr("pr / |#out|");
  EXPECT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(e->bin_op, BinOp::kDiv);
  EXPECT_EQ(e->kids[1]->kind, ExprKind::kDegree);
}

TEST(Parser, OperatorPrecedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3)
  const auto e = parse_expr("1 + 2 * 3");
  EXPECT_EQ(e->bin_op, BinOp::kAdd);
  EXPECT_EQ(e->kids[1]->bin_op, BinOp::kMul);
  // comparison binds looser than arithmetic
  const auto c = parse_expr("1 + 2 < 3 * 4");
  EXPECT_EQ(c->bin_op, BinOp::kLt);
  // && binds tighter than ||
  const auto b = parse_expr("a || b && c");
  EXPECT_EQ(b->bin_op, BinOp::kOr);
  EXPECT_EQ(b->kids[1]->bin_op, BinOp::kAnd);
}

TEST(Parser, LetBodyExtendsToBlockEnd) {
  const auto e = parse_expr("let s : float = 1.0 in x = s; y = s");
  ASSERT_EQ(e->kind, ExprKind::kLet);
  EXPECT_EQ(e->kids[1]->kind, ExprKind::kSeq);
  EXPECT_EQ(e->kids[1]->kids.size(), 2u);
}

TEST(Parser, IfThenElseAsValue) {
  const auto e = parse_expr("if vertexId == 3 then 0 else infty");
  ASSERT_EQ(e->kind, ExprKind::kIf);
  EXPECT_EQ(e->kids.size(), 3u);
}

TEST(Parser, IfWithoutElse) {
  const auto e = parse_expr("if a < b then x = 1");
  ASSERT_EQ(e->kind, ExprKind::kIf);
  EXPECT_EQ(e->kids.size(), 2u);
  EXPECT_EQ(e->kids[1]->kind, ExprKind::kAssign);
}

TEST(Parser, MinMaxCallForm) {
  const auto e = parse_expr("min(dist, best)");
  EXPECT_EQ(e->kind, ExprKind::kPairOp);
  EXPECT_EQ(e->pair_op, PairOp::kMin);
}

TEST(Parser, SequencesAndTrailingSemicolons) {
  const auto p = parse("init { local x : int = 0; }; step { x = 1; x = 2; }");
  EXPECT_EQ(p.stmts[0].body->kind, ExprKind::kSeq);
  EXPECT_EQ(p.stmts[0].body->kids.size(), 2u);
}

TEST(Parser, ParenthesizedSequence) {
  const auto e = parse_expr("if a then (x = 1; y = 2)");
  EXPECT_EQ(e->kids[1]->kind, ExprKind::kSeq);
}

TEST(Parser, UnaryOperators) {
  EXPECT_EQ(parse_expr("-x")->un_op, UnOp::kNeg);
  EXPECT_EQ(parse_expr("not x")->un_op, UnOp::kNot);
  EXPECT_EQ(parse_expr("- - 3")->kids[0]->un_op, UnOp::kNeg);
}

TEST(Parser, PaperBenchmarkProgramsParse) {
  EXPECT_NO_THROW(parse(programs::kPageRank));
  EXPECT_NO_THROW(parse(programs::kPageRankUndirected));
  EXPECT_NO_THROW(parse(programs::kSssp));
  EXPECT_NO_THROW(parse(programs::kConnectedComponents));
  EXPECT_NO_THROW(parse(programs::kHits));
  EXPECT_NO_THROW(parse(programs::kReachability));
  EXPECT_NO_THROW(parse(programs::kMaxGossip));
}

// ------------------------------------------------------------ error cases

TEST(ParserErrors, MissingInit) {
  EXPECT_THROW(parse("step { x = 1 }"), CompileError);
}

TEST(ParserErrors, MissingUntil) {
  EXPECT_THROW(parse("init { local x : int = 0 }; iter i { x = 1 }"),
               CompileError);
}

TEST(ParserErrors, AggregationMissingBinderClause) {
  EXPECT_THROW(parse_expr("+ [ u.pr ]"), CompileError);
}

TEST(ParserErrors, DotOnNonBinder) {
  EXPECT_THROW(parse_expr("+ [ v.pr | u <- #in ]"), CompileError);
}

TEST(ParserErrors, UnclosedBrace) {
  EXPECT_THROW(parse("init { local x : int = 0 ; step { x = 1 }"),
               CompileError);
}

TEST(ParserErrors, BadType) {
  EXPECT_THROW(parse("init { local x : quux = 0 }; step { x = 1 }"),
               CompileError);
}

TEST(ParserErrors, GarbageAfterProgram) {
  EXPECT_THROW(parse("init { local x : int = 0 }; step { x = 1 } trailing"),
               CompileError);
}

TEST(ParserErrors, ErrorCarriesLocation) {
  try {
    parse("init { local x : int = 0 };\nstep { x = @ }");
    FAIL();
  } catch (const CompileError& e) {
    EXPECT_EQ(e.loc().line, 2);
  }
}

}  // namespace
}  // namespace deltav::dv
