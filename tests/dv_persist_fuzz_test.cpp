// Bounded persistence fuzz smoke: generated (program, graph, stream)
// triples swept over kill-points — every epoch boundary restored and
// replayed, sampled mid-convergence checkpoints resumed, random faults
// injected (persist_check.h). The ≥300-triple acceptance soak lives in
// `tools/dv_fuzz --persist`.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "dv/testing/persist_check.h"
#include "test_util.h"

namespace deltav::dv::testing {
namespace {

constexpr int kSmokeCases = 25;

TEST(PersistFuzzSmoke, RestoredSessionsTrackUninterruptedRuns) {
  const std::uint64_t seed = test::effective_seed(0x5E55A9ED);
  Rng rng(seed);
  int checked = 0;
  for (int k = 0; k < kSmokeCases; ++k) {
    Rng crng = rng.split();
    const StreamCase sc = generate_stream_case(crng);
    const auto fail = check_persist_case(sc, crng);
    ASSERT_FALSE(fail.has_value())
        << test::seed_banner(seed) << " case " << k << " [" << fail->check
        << "] " << fail->detail << "\n"
        << describe(sc);
    ++checked;
  }
  EXPECT_EQ(checked, kSmokeCases);
}

TEST(PersistFuzzSmoke, OddWorkerCountUsesScanAllScheduler) {
  const std::uint64_t seed = test::effective_seed(0x5E55A0DD);
  Rng rng(seed);
  PersistCheckOptions opts;
  opts.workers = 3;  // kBlock + kScanAll pairing
  for (int k = 0; k < 6; ++k) {
    Rng crng = rng.split();
    const StreamCase sc = generate_stream_case(crng);
    const auto fail = check_persist_case(sc, crng, opts);
    ASSERT_FALSE(fail.has_value())
        << test::seed_banner(seed) << " case " << k << " [" << fail->check
        << "] " << fail->detail << "\n"
        << describe(sc);
  }
}

}  // namespace
}  // namespace deltav::dv::testing
