// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "dv/compiler.h"
#include "dv/runtime/runner.h"
#include "graph/csr_graph.h"
#include "graph/generators.h"

namespace deltav::test {

/// Engine options sized for unit tests (small worker count, tiny cluster).
inline pregel::EngineOptions small_engine(int workers = 3) {
  pregel::EngineOptions o;
  o.num_workers = workers;
  o.cluster.machines = 2;
  o.cluster.workers_per_machine = 2;
  return o;
}

/// Compiles with defaults (ΔV) or as ΔV*.
inline dv::CompiledProgram compile_dv(const std::string& src,
                                      bool incremental = true) {
  dv::CompileOptions o;
  o.incrementalize = incremental;
  return dv::compile(src, o);
}

/// EXPECT element-wise closeness of two double vectors.
inline void expect_close(const std::vector<double>& a,
                         const std::vector<double>& b, double tol = 1e-9) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::isinf(a[i]) || std::isinf(b[i])) {
      EXPECT_EQ(a[i], b[i]) << "at index " << i;
    } else {
      EXPECT_NEAR(a[i], b[i], tol) << "at index " << i;
    }
  }
}

/// A small battery of graphs exercising different shapes.
inline graph::CsrGraph small_directed(std::uint64_t seed = 7) {
  return graph::rmat(64, 256, seed);
}

inline graph::CsrGraph small_undirected(std::uint64_t seed = 7) {
  graph::RmatOptions o;
  o.directed = false;
  return graph::rmat(64, 200, seed, o);
}

}  // namespace deltav::test
