// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dv/compiler.h"
#include "dv/runtime/runner.h"
#include "graph/csr_graph.h"
#include "graph/generators.h"

namespace deltav::test {

/// Base seed for randomized tests, read once from the DV_TEST_SEED env
/// var. 0 (the default) means "no override": tests use their built-in
/// seeds, so default runs are byte-for-byte reproducible across machines.
inline std::uint64_t test_seed_base() {
  static const std::uint64_t base = [] {
    const char* s = std::getenv("DV_TEST_SEED");
    return s ? std::strtoull(s, nullptr, 0) : 0ULL;
  }();
  return base;
}

/// The seed a randomized test should actually use: its built-in default
/// when DV_TEST_SEED is unset, otherwise a mix of the override and the
/// per-test default (so one env var re-seeds every test differently).
/// Always include seed_banner(effective_seed(...)) in failure messages so
/// a CI failure is reproducible locally.
inline std::uint64_t effective_seed(std::uint64_t test_default) {
  const std::uint64_t base = test_seed_base();
  if (base == 0) return test_default;
  std::uint64_t state = base ^ (test_default * 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

inline std::string seed_banner(std::uint64_t effective) {
  return "[effective seed " + std::to_string(effective) +
         "; rerun with DV_TEST_SEED=<n> to override]";
}

/// Engine options sized for unit tests (small worker count, tiny cluster).
inline pregel::EngineOptions small_engine(int workers = 3) {
  pregel::EngineOptions o;
  o.num_workers = workers;
  o.cluster.machines = 2;
  o.cluster.workers_per_machine = 2;
  return o;
}

/// Compiles with defaults (ΔV) or as ΔV*.
inline dv::CompiledProgram compile_dv(const std::string& src,
                                      bool incremental = true) {
  dv::CompileOptions o;
  o.incrementalize = incremental;
  return dv::compile(src, o);
}

/// EXPECT element-wise closeness of two double vectors.
inline void expect_close(const std::vector<double>& a,
                         const std::vector<double>& b, double tol = 1e-9) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::isinf(a[i]) || std::isinf(b[i])) {
      EXPECT_EQ(a[i], b[i]) << "at index " << i;
    } else {
      EXPECT_NEAR(a[i], b[i], tol) << "at index " << i;
    }
  }
}

/// A small battery of graphs exercising different shapes. Both honor
/// DV_TEST_SEED through effective_seed().
inline graph::CsrGraph small_directed(std::uint64_t seed = 7) {
  return graph::rmat(64, 256, effective_seed(seed));
}

inline graph::CsrGraph small_undirected(std::uint64_t seed = 7) {
  graph::RmatOptions o;
  o.directed = false;
  return graph::rmat(64, 200, effective_seed(seed), o);
}

}  // namespace deltav::test
