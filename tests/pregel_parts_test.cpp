// Unit tests for the engine's building blocks: partitions, the worker
// pool, and aggregators.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "pregel/aggregator.h"
#include "pregel/partition.h"
#include "pregel/worker_pool.h"

namespace deltav::pregel {
namespace {

// ------------------------------------------------------------- partition

TEST(Partition, BlockCoversAllVerticesExactlyOnce) {
  VertexPartition p(103, 4, PartitionScheme::kBlock);
  std::vector<int> seen(103, 0);
  std::size_t total = 0;
  for (int w = 0; w < 4; ++w) {
    p.for_each_owned(w, [&](graph::VertexId v) {
      ++seen[v];
      EXPECT_EQ(p.owner(v), w);
      ++total;
    });
    EXPECT_EQ(p.count(w), [&] {
      std::size_t c = 0;
      p.for_each_owned(w, [&](graph::VertexId) { ++c; });
      return c;
    }());
  }
  EXPECT_EQ(total, 103u);
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Partition, HashCoversAllVerticesExactlyOnce) {
  VertexPartition p(211, 5, PartitionScheme::kHash);
  std::size_t total = 0;
  for (int w = 0; w < 5; ++w) total += p.count(w);
  EXPECT_EQ(total, 211u);
}

TEST(Partition, LocalIndicesAreDenseAndInjective) {
  for (auto scheme : {PartitionScheme::kBlock, PartitionScheme::kHash}) {
    VertexPartition p(97, 3, scheme);
    for (int w = 0; w < 3; ++w) {
      std::set<std::size_t> locals;
      p.for_each_owned(w, [&](graph::VertexId v) {
        const auto li = p.local_index(v);
        EXPECT_LT(li, p.local_capacity(w));
        EXPECT_TRUE(locals.insert(li).second)
            << "collision at v=" << v << " scheme="
            << (scheme == PartitionScheme::kBlock ? "block" : "hash");
      });
      EXPECT_EQ(locals.size(), p.count(w));
    }
  }
}

TEST(Partition, HashBalancesHubHeavyIds) {
  // Consecutive ids (the worst case for block partitioning of hub-ordered
  // graphs) spread ~evenly under hashing.
  VertexPartition p(10000, 8, PartitionScheme::kHash);
  for (int w = 0; w < 8; ++w) {
    EXPECT_GT(p.count(w), 1000u);
    EXPECT_LT(p.count(w), 1500u);
  }
}

TEST(Partition, SingleWorkerOwnsEverything) {
  VertexPartition p(42, 1, PartitionScheme::kBlock);
  EXPECT_EQ(p.count(0), 42u);
  EXPECT_EQ(p.owner(41), 0);
}

// ------------------------------------------------------------ worker pool

TEST(WorkerPool, RunsOnAllWorkers) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](int w) { hits[static_cast<std::size_t>(w)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, ReusableAcrossManyRounds) {
  WorkerPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 100; ++round)
    pool.run([&](int) { ++total; });
  EXPECT_EQ(total.load(), 300);
}

TEST(WorkerPool, ExceptionRethrownOnCaller) {
  WorkerPool pool(4);
  EXPECT_THROW(pool.run([](int w) {
    if (w == 2) throw std::runtime_error("bad worker");
  }),
               std::runtime_error);
  // Pool remains usable after an exception.
  std::atomic<int> total{0};
  pool.run([&](int) { ++total; });
  EXPECT_EQ(total.load(), 4);
}

TEST(WorkerPool, CallerThreadIsWorkerZero) {
  WorkerPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.run([&](int w) {
    EXPECT_EQ(w, 0);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(WorkerPool, ParallelismActuallyHappens) {
  // All workers must be in-flight simultaneously to pass the barrier.
  const int n = 4;
  WorkerPool pool(n);
  std::atomic<int> arrived{0};
  pool.run([&](int) {
    ++arrived;
    while (arrived.load() < n) std::this_thread::yield();
  });
  EXPECT_EQ(arrived.load(), n);
}

// -------------------------------------------------------------- aggregator

TEST(Aggregator, AndReduces) {
  AndAggregator agg(3, true);
  agg.contribute(0, true);
  agg.contribute(1, false);
  EXPECT_FALSE(agg.reduce());
  agg.reset();
  EXPECT_TRUE(agg.reduce());
}

TEST(Aggregator, OrReduces) {
  OrAggregator agg(2, false);
  EXPECT_FALSE(agg.reduce());
  agg.contribute(1, true);
  EXPECT_TRUE(agg.reduce());
}

TEST(Aggregator, SumAcrossWorkers) {
  Aggregator<std::int64_t, SumOp> agg(4, 0);
  for (int w = 0; w < 4; ++w)
    for (int i = 0; i < 10; ++i) agg.contribute(w, 1);
  EXPECT_EQ(agg.reduce(), 40);
}

TEST(Aggregator, MinMax) {
  Aggregator<double, MinOp> mn(2, 1e300);
  mn.contribute(0, 5.0);
  mn.contribute(1, -2.0);
  EXPECT_DOUBLE_EQ(mn.reduce(), -2.0);

  Aggregator<double, MaxOp> mx(2, -1e300);
  mx.contribute(0, 5.0);
  mx.contribute(1, -2.0);
  EXPECT_DOUBLE_EQ(mx.reduce(), 5.0);
}

TEST(Aggregator, ConcurrentContributionsFromDistinctWorkers) {
  const int workers = 8;
  Aggregator<std::int64_t, SumOp> agg(workers, 0);
  WorkerPool pool(workers);
  pool.run([&](int w) {
    for (int i = 0; i < 1000; ++i) agg.contribute(w, 1);
  });
  EXPECT_EQ(agg.reduce(), 8000);
}

TEST(Aggregator, BoolSlotsAreRaceFree) {
  // Regression guard for the vector<bool> bit-packing hazard: concurrent
  // boolean contributions from distinct workers must all land.
  const int workers = 8;
  OrAggregator agg(workers, false);
  WorkerPool pool(workers);
  pool.run([&](int w) {
    if (w % 2 == 0) agg.contribute(w, true);
  });
  EXPECT_TRUE(agg.reduce());
}

}  // namespace
}  // namespace deltav::pregel
