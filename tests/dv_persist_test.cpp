// Session persistence: snapshot round-trips, mid-convergence resume, and
// fault detection (dv/persist/).
//
// The load-bearing assertion style here is *bit-exactness*: a restored
// session must match the uninterrupted one on every state word — user
// fields, memoized accumulators (aggAccum), the three-field ×/&&/||
// treatment (nnAcc / aggNulls), and last-sent Δ-message memos all live in
// the state vector — and must make the same warm/cold, blocker and
// compaction decisions with the same superstep/message counts when the
// stream continues. Fault tests require every torn or flipped snapshot to
// be rejected with persist::SnapshotError, never silently restored.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "dv/persist/fault.h"
#include "dv/persist/snapshot.h"
#include "dv/streaming/stream_session.h"
#include "graph/graph_builder.h"
#include "test_util.h"

namespace deltav {
namespace {

using dv::streaming::DvStreamSession;
using dv::streaming::SessionEpoch;
using dv::streaming::SessionOptions;
using dv::streaming::make_stream_session;
using graph::MutationBatch;
using test::compile_dv;
using test::small_engine;

SessionOptions session_opts(dv::ExecTier tier = dv::ExecTier::kVm) {
  SessionOptions o;
  o.run.engine = small_engine();
  o.run.tier = tier;
  return o;
}

/// 6-vertex directed graph; vertices 0 and 1 (the absorbing-mass seeds of
/// the ×/&&/|| programs below) both feed vertex 3.
graph::CsrGraph absorbing_graph() {
  graph::GraphBuilder b(6, /*directed=*/true);
  b.add_edge(0, 3);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  b.add_edge(2, 4);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  return b.build();
}

bool bits_equal(const dv::Value& a, const dv::Value& b) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case dv::Type::kInt: return a.i == b.i;
    case dv::Type::kBool: return a.b == b.b;
    case dv::Type::kFloat:
      return std::bit_cast<std::uint64_t>(a.f) ==
             std::bit_cast<std::uint64_t>(b.f);
    default: return true;
  }
}

/// Whole state vector, bit for bit — internal accumulator fields included.
void expect_state_bits_equal(const dv::DvRunResult& got,
                             const dv::DvRunResult& want,
                             const std::string& context) {
  ASSERT_EQ(got.state.size(), want.state.size()) << context;
  for (std::size_t i = 0; i < want.state.size(); ++i)
    ASSERT_TRUE(bits_equal(got.state[i], want.state[i]))
        << context << ": state word " << i << " diverged";
}

void expect_epoch_equal(const SessionEpoch& got, const SessionEpoch& want,
                        const std::string& context) {
  EXPECT_EQ(got.warm, want.warm) << context;
  EXPECT_STREQ(got.blocker ? got.blocker : "<warm>",
               want.blocker ? want.blocker : "<warm>")
      << context;
  EXPECT_EQ(got.compacted, want.compacted) << context;
  EXPECT_EQ(got.stats.supersteps, want.stats.supersteps) << context;
  EXPECT_EQ(got.stats.messages, want.stats.messages) << context;
  EXPECT_EQ(got.stats.deltas_applied, want.stats.deltas_applied) << context;
  EXPECT_EQ(got.stats.woken, want.stats.woken) << context;
}

/// Reference trajectory, then a kill-point sweep: restore the epoch-k
/// snapshot and replay the remaining batches, requiring bit-identical
/// state and identical epoch decisions throughout.
void sweep_boundaries(const dv::CompiledProgram& cp,
                      const graph::CsrGraph& base,
                      const std::vector<MutationBatch>& batches,
                      const SessionOptions& opts,
                      const SessionOptions& restore_opts,
                      const std::string& context) {
  const auto ref = make_stream_session(cp, base, opts);
  ref->converge();
  std::vector<std::vector<std::uint8_t>> boundary{ref->save_bytes()};
  std::vector<dv::DvRunResult> ref_state{ref->result()};
  std::vector<SessionEpoch> ref_epochs;
  for (const MutationBatch& b : batches) {
    ref_epochs.push_back(ref->apply(b));
    boundary.push_back(ref->save_bytes());
    ref_state.push_back(ref->result());
  }

  for (std::size_t k = 0; k < boundary.size(); ++k) {
    const std::string who =
        context + ", restore at epoch " + std::to_string(k);
    const auto s =
        DvStreamSession::restore_bytes(cp, boundary[k], restore_opts);
    EXPECT_TRUE(s->converged()) << who;
    EXPECT_EQ(s->epoch(), k) << who;
    expect_state_bits_equal(s->result(), ref_state[k], who);
    for (std::size_t bi = k; bi < batches.size(); ++bi) {
      const SessionEpoch ep = s->apply(batches[bi]);
      const std::string tag =
          who + ", replayed epoch " + std::to_string(bi + 1);
      expect_epoch_equal(ep, ref_epochs[bi], tag);
      expect_state_bits_equal(s->result(), ref_state[bi + 1], tag);
    }
  }
}

// ------------------------------------------- six-operator battery

struct OpCase {
  const char* name;
  const char* source;
  bool removals_ok;  // min/max cannot retract; use insert-only streams
};

const OpCase kOpCases[] = {
    {"sum", R"(
init { local mass : float = 0.5 + vertexId; local out : float = 0.0 };
iter i { out = + [ u.mass | u <- #in ] } until { i >= 1 }
)",
     true},
    {"prod", R"(
init {
  local mass : float = if vertexId < 2 then 0.0
                       else 1.0 + 1.0 / (2.0 + vertexId);
  local out : float = 1.0
};
iter i { out = * [ u.mass | u <- #in ] } until { i >= 1 }
)",
     true},
    {"and", R"(
init { local mass : bool = vertexId >= 2; local out : bool = true };
iter i { out = && [ u.mass | u <- #in ] } until { i >= 1 }
)",
     true},
    {"or", R"(
init { local mass : bool = vertexId < 2; local out : bool = false };
iter i { out = || [ u.mass | u <- #in ] } until { i >= 1 }
)",
     true},
    {"min", R"(
init { local mass : float = 0.5 + vertexId; local out : float = infty };
iter i { out = min [ u.mass | u <- #in ] } until { i >= 1 }
)",
     false},
    {"max", R"(
init { local mass : int = vertexId; local out : int = 0 };
iter i { out = max [ u.mass | u <- #in ] } until { i >= 1 }
)",
     false},
};

/// For the retractable operators, the stream walks vertex 3's accumulator
/// through the §6.4.1 absorbing-element transitions: batch 1 removes one
/// of its two absorbing contributors (null count 2 → 1, still absorbed),
/// batch 2 removes the other (1 → 0: the memoized non-null accumulator
/// surfaces) and gives vertex 4 a *new* absorbing contributor (0 → 1).
std::vector<MutationBatch> stream_for(const OpCase& oc) {
  std::vector<MutationBatch> batches(2);
  if (oc.removals_ok) {
    batches[0].remove_edge(0, 3);
    batches[1].remove_edge(1, 3);
    batches[1].insert_edge(0, 4);
  } else {
    batches[0].insert_edge(0, 4);
    batches[0].insert_edge(5, 3);
    batches[1].insert_edge(1, 4);
  }
  return batches;
}

TEST(PersistRoundTrip, SixOpsAbsorbingTransitionsBothTiers) {
  for (const OpCase& oc : kOpCases) {
    const auto cp = compile_dv(oc.source);
    const graph::CsrGraph base = absorbing_graph();
    const auto batches = stream_for(oc);
    for (const dv::ExecTier tier :
         {dv::ExecTier::kVm, dv::ExecTier::kTree}) {
      sweep_boundaries(cp, base, batches, session_opts(tier),
                       session_opts(tier),
                       std::string(oc.name) + "/" +
                           dv::exec_tier_name(tier));
    }
    // Cross-tier: a VM-written snapshot restores onto the tree
    // interpreter (tiers are bit-identical by contract).
    sweep_boundaries(cp, base, batches, session_opts(dv::ExecTier::kVm),
                     session_opts(dv::ExecTier::kTree),
                     std::string(oc.name) + "/vm-to-tree");
  }
}

TEST(PersistRoundTrip, FileSaveRestore) {
  const auto cp = compile_dv(kOpCases[0].source);
  const std::string path = ::testing::TempDir() + "dv_persist_rt.snap";
  const auto s = make_stream_session(cp, absorbing_graph(), session_opts());
  s->converge();
  MutationBatch b;
  b.insert_edge(5, 3);
  s->apply(b);
  s->save(path);
  const auto r = DvStreamSession::restore(cp, path, session_opts());
  EXPECT_EQ(r->epoch(), 1u);
  expect_state_bits_equal(r->result(), s->result(), "file round-trip");
  std::remove(path.c_str());
}

TEST(PersistRoundTrip, FactoryMatchesDirectConstruction) {
  const auto cp = compile_dv(kOpCases[0].source);
  const auto a = make_stream_session(cp, absorbing_graph(), session_opts());
  DvStreamSession b(cp, absorbing_graph(), session_opts());
  a->converge();
  b.converge();
  expect_state_bits_equal(a->result(), b.result(), "factory vs direct");
}

// ------------------------------------------- mid-convergence resume

/// Damped feedback recurrence: convergence takes `bound` body supersteps,
/// giving checkpoint_every=1 several distinct mid-run kill-points.
constexpr const char* kFeedback = R"(
init { local rank : float = 1.0 };
iter i {
  let s : float = + [ u.rank | u <- #in ] in
  rank = 0.15 + 0.85 * (s / graphSize)
} until { i >= 6 }
)";

TEST(PersistResume, MidConvergeResumeMatchesUninterrupted) {
  const auto cp = compile_dv(kFeedback);
  std::vector<std::vector<std::uint8_t>> mid;
  SessionOptions so = session_opts();
  so.checkpoint_every = 1;
  so.checkpoint_sink = [&mid](const std::vector<std::uint8_t>& b) {
    mid.push_back(b);
  };
  const auto ref = make_stream_session(cp, absorbing_graph(), so);
  const dv::DvRunResult done = ref->converge();
  ASSERT_GE(mid.size(), 3u) << "expected several mid-run checkpoints";

  for (std::size_t i = 0; i < mid.size(); ++i) {
    const std::string who = "mid-run checkpoint " + std::to_string(i);
    const auto s =
        DvStreamSession::restore_bytes(cp, mid[i], session_opts());
    EXPECT_FALSE(s->converged()) << who;
    EXPECT_EQ(s->epoch(), 0u) << who;
    const dv::DvRunResult r = s->converge();
    EXPECT_TRUE(s->converged()) << who;
    // The resumed run's cumulative counters continue the saved history:
    // totals match an uninterrupted run exactly.
    EXPECT_EQ(r.supersteps, done.supersteps) << who;
    EXPECT_EQ(r.stats.total_messages_sent(), done.stats.total_messages_sent())
        << who;
    expect_state_bits_equal(r, done, who);
  }
}

TEST(PersistResume, MidColdEpochResumeReplaysCompactionAndStream) {
  // The feedback recurrence is warm-blocked (its iteration bound is
  // semantic), so each apply() rebuilds cold — and with
  // checkpoint_every=1 the rebuild emits mid-run kill-points *inside
  // epoch 1*.
  const auto cp = compile_dv(kFeedback);
  std::vector<std::vector<std::uint8_t>> mid;
  SessionOptions so = session_opts();
  so.checkpoint_every = 1;
  so.checkpoint_sink = [&mid](const std::vector<std::uint8_t>& b) {
    mid.push_back(b);
  };
  const auto ref = make_stream_session(cp, absorbing_graph(), so);
  ref->converge();
  mid.clear();  // keep only epoch-1 checkpoints

  MutationBatch b1;
  b1.remove_edge(0, 3);
  const SessionEpoch e1 = ref->apply(b1);
  EXPECT_FALSE(e1.warm);
  const std::vector<std::vector<std::uint8_t>> mid_e1 = mid;  // epoch 1 only
  ASSERT_FALSE(mid_e1.empty()) << "cold rebuild produced no checkpoints";

  MutationBatch b2;
  b2.remove_edge(1, 3);
  const SessionEpoch e2 = ref->apply(b2);

  for (std::size_t i = 0; i < mid_e1.size(); ++i) {
    const std::string who =
        "epoch-1 mid-run checkpoint " + std::to_string(i);
    const auto s =
        DvStreamSession::restore_bytes(cp, mid_e1[i], session_opts());
    EXPECT_FALSE(s->converged()) << who;
    EXPECT_EQ(s->epoch(), 1u) << who;
    s->converge();
    const SessionEpoch ep = s->apply(b2);
    expect_epoch_equal(ep, e2, who);
    expect_state_bits_equal(s->result(), ref->result(), who);
  }
}

TEST(PersistResume, ApplyOnUnresumedSnapshotIsRefused) {
  const auto cp = compile_dv(kFeedback);
  std::vector<std::vector<std::uint8_t>> mid;
  SessionOptions so = session_opts();
  so.checkpoint_every = 1;
  so.checkpoint_sink = [&mid](const std::vector<std::uint8_t>& b) {
    mid.push_back(b);
  };
  make_stream_session(cp, absorbing_graph(), so)->converge();
  ASSERT_FALSE(mid.empty());
  const auto s =
      DvStreamSession::restore_bytes(cp, mid.front(), session_opts());
  MutationBatch b;
  b.insert_edge(0, 4);
  EXPECT_THROW(s->apply(b), CheckError);
}

TEST(PersistResume, CheckpointPathWritesRestorableFile) {
  const auto cp = compile_dv(kFeedback);
  const std::string path = ::testing::TempDir() + "dv_persist_ckpt.snap";
  SessionOptions so = session_opts();
  so.checkpoint_every = 2;
  so.checkpoint_path = path;
  const auto ref = make_stream_session(cp, absorbing_graph(), so);
  const dv::DvRunResult done = ref->converge();

  const auto s = DvStreamSession::restore(cp, path, session_opts());
  EXPECT_FALSE(s->converged());
  const dv::DvRunResult r = s->converge();
  EXPECT_EQ(r.supersteps, done.supersteps);
  expect_state_bits_equal(r, done, "checkpoint file resume");
  std::remove(path.c_str());
}

// ------------------------------------------- fault injection

std::vector<std::uint8_t> small_snapshot(const dv::CompiledProgram& cp) {
  const auto s = make_stream_session(cp, absorbing_graph(), session_opts());
  s->converge();
  return s->save_bytes();
}

TEST(PersistFault, EveryTruncationDetected) {
  const auto cp = compile_dv(kOpCases[0].source);
  const std::vector<std::uint8_t> good = small_snapshot(cp);
  // Sanity: the pristine bytes restore.
  (void)DvStreamSession::restore_bytes(cp, good, session_opts());
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    const auto bad = dv::persist::apply_fault(
        good, dv::persist::FaultPlan::truncate_at(cut));
    EXPECT_THROW((void)DvStreamSession::restore_bytes(cp, bad,
                                                      session_opts()),
                 dv::persist::SnapshotError)
        << "torn snapshot (" << cut << "/" << good.size()
        << " bytes) restored without an error";
  }
}

TEST(PersistFault, EveryByteFlipDetected) {
  const auto cp = compile_dv(kOpCases[0].source);
  const std::vector<std::uint8_t> good = small_snapshot(cp);
  for (const std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
    for (std::size_t at = 0; at < good.size(); ++at) {
      const auto bad = dv::persist::apply_fault(
          good, dv::persist::FaultPlan::flip_byte(at, mask));
      EXPECT_THROW((void)DvStreamSession::restore_bytes(cp, bad,
                                                        session_opts()),
                   dv::persist::SnapshotError)
          << "flip at byte " << at << " mask " << int(mask)
          << " restored without an error";
    }
  }
}

TEST(PersistFault, TrailingGarbageRejected) {
  const auto cp = compile_dv(kOpCases[0].source);
  std::vector<std::uint8_t> bad = small_snapshot(cp);
  bad.push_back(0);
  EXPECT_THROW(
      (void)DvStreamSession::restore_bytes(cp, bad, session_opts()),
      dv::persist::SnapshotError);
}

TEST(PersistFault, MismatchedProgramRejected) {
  const auto cp = compile_dv(kOpCases[0].source);
  const std::vector<std::uint8_t> bytes = small_snapshot(cp);
  const auto other = compile_dv(kOpCases[5].source);
  try {
    (void)DvStreamSession::restore_bytes(other, bytes, session_opts());
    FAIL() << "restore under a different program succeeded";
  } catch (const dv::persist::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("different compiled program"),
              std::string::npos)
        << e.what();
  }
}

TEST(PersistFault, MismatchedEngineConfigRejected) {
  const auto cp = compile_dv(kOpCases[0].source);
  const std::vector<std::uint8_t> bytes = small_snapshot(cp);

  SessionOptions workers = session_opts();
  workers.run.engine.num_workers += 1;
  EXPECT_THROW((void)DvStreamSession::restore_bytes(cp, bytes, workers),
               dv::persist::SnapshotError);

  SessionOptions sched = session_opts();
  sched.run.engine.schedule =
      sched.run.engine.schedule == pregel::ScheduleMode::kScanAll
          ? pregel::ScheduleMode::kWorkQueue
          : pregel::ScheduleMode::kScanAll;
  EXPECT_THROW((void)DvStreamSession::restore_bytes(cp, bytes, sched),
               dv::persist::SnapshotError);

  SessionOptions params = session_opts();
  params.run.params["ghost"] = dv::Value::of_int(7);
  EXPECT_THROW((void)DvStreamSession::restore_bytes(cp, bytes, params),
               dv::persist::SnapshotError);
}

TEST(PersistFault, MissingFileThrows) {
  const auto cp = compile_dv(kOpCases[0].source);
  EXPECT_THROW((void)DvStreamSession::restore(
                   cp, ::testing::TempDir() + "dv_persist_nope.snap",
                   session_opts()),
               dv::persist::SnapshotError);
}

}  // namespace
}  // namespace deltav
