// Bytecode-tier tests: lowering golden checks on the disassembly,
// expression-level VM-vs-interpreter bit-equivalence, and end-to-end tier
// equality (state words, message/byte counts, supersteps) on the paper's
// four benchmark programs. The differential fuzzer covers the same
// contract on generated programs; these are the deterministic anchors.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "dv/compiler.h"
#include "dv/programs/programs.h"
#include "dv/runtime/interpreter.h"
#include "dv/runtime/runner.h"
#include "dv/runtime/vm.h"
#include "graph/generators.h"
#include "test_util.h"

namespace deltav::dv {
namespace {

bool same_bits(const Value& a, const Value& b) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case Type::kFloat:
      return std::bit_cast<std::uint64_t>(a.f) ==
             std::bit_cast<std::uint64_t>(b.f);
    case Type::kBool:
      return a.b == b.b;
    default:
      return a.i == b.i;
  }
}

std::string show(const Value& v) {
  switch (v.type) {
    case Type::kFloat: return "f:" + std::to_string(v.f);
    case Type::kBool: return v.b ? "b:true" : "b:false";
    default: return "i:" + std::to_string(v.i);
  }
}

// ---------------------------------------------------------------------------
// Lowering golden checks
// ---------------------------------------------------------------------------

TEST(VmLowering, PageRankDisassemblyUsesSuperinstructionsAndFusions) {
  const auto cp = compile(programs::kPageRank, {});
  const std::string dis = to_string(lower_program(cp));
  // The two dominant loops are superinstructions, not bytecode loops.
  EXPECT_NE(dis.find("fold.delta"), std::string::npos) << dis;
  EXPECT_NE(dis.find("send.delta"), std::string::npos) << dis;
  // Peephole fusion collapses the normalizing divisions and the damped
  // multiply-add of the recurrence.
  EXPECT_NE(dis.find("div.n.f"), std::string::npos) << dis;
  EXPECT_NE(dis.find("div.degout.f"), std::string::npos) << dis;
  EXPECT_NE(dis.find("muladd.f"), std::string::npos) << dis;
  // The unfused three-instruction division sequences must be gone: no
  // bare load.n should survive in any chunk.
  EXPECT_EQ(dis.find("load.n"), std::string::npos) << dis;
}

TEST(VmLowering, NonIncrementalLoweringUsesFullVariants) {
  const auto cp =
      compile(programs::kPageRank, CompileOptions{.incrementalize = false});
  const std::string dis = to_string(lower_program(cp));
  EXPECT_NE(dis.find("fold.full"), std::string::npos) << dis;
  EXPECT_NE(dis.find("send.full"), std::string::npos) << dis;
  EXPECT_EQ(dis.find("fold.delta"), std::string::npos) << dis;
  EXPECT_EQ(dis.find("send.delta"), std::string::npos) << dis;
}

TEST(VmLowering, EveryBenchmarkProgramLowersBothVariants) {
  for (const char* src :
       {programs::kPageRank, programs::kSssp, programs::kConnectedComponents,
        programs::kHits, programs::kReachability, programs::kMaxGossip}) {
    for (const bool inc : {true, false}) {
      const auto cp = compile(src, CompileOptions{.incrementalize = inc});
      const VmProgram vp = lower_program(cp);
      EXPECT_FALSE(vp.chunks.empty());
      // Every runner-visible root has a chunk, and the statement bodies
      // resolve through the root map.
      for (const Stmt& s : cp.program.stmts)
        EXPECT_GE(vp.chunk_of(*s.body), 0);
      if (cp.program.init) {
        EXPECT_GE(vp.chunk_of(*cp.program.init), 0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Expression-level equivalence via lower_root
// ---------------------------------------------------------------------------

/// Compiles a one-statement program around `expr_src`, then evaluates the
/// body once per tier from identical state and requires bit-identical
/// results and field stores.
void expect_tier_equal_expr(const std::string& out_type,
                            const std::string& expr_src) {
  const std::string src = "init { local out : " + out_type + " = " +
                          (out_type == "bool" ? "false" : "0") +
                          " };"
                          "step { out = " +
                          expr_src + " }";
  Diagnostics diags;
  Program prog = parse_and_check(src, diags);
  VmProgram vp;
  const int chunk = lower_root(vp, prog, *prog.stmts[0].body);
  const Vm vm(std::move(vp));
  const auto g = graph::cycle(4);
  const graph::GraphView gv{g};

  const auto run = [&](bool use_vm) {
    std::vector<Value> fields(prog.fields.size());
    for (std::size_t i = 0; i < fields.size(); ++i) {
      switch (prog.fields[i].type) {
        case Type::kBool: fields[i] = Value::of_bool(false); break;
        case Type::kFloat: fields[i] = Value::of_float(0); break;
        default: fields[i] = Value::of_int(0); break;
      }
    }
    std::vector<Value> scratch(prog.scratch.size() + 8, Value::of_int(0));
    EvalContext ctx;
    ctx.prog = &prog;
    ctx.graph = &gv;
    ctx.fields = fields;
    ctx.scratch = scratch;
    ctx.has_vertex = true;
    ctx.vertex = 1;
    ctx.iter = 3;
    if (use_vm)
      vm.run_chunk(chunk, ctx);
    else
      eval(*prog.stmts[0].body, ctx);
    return fields[0];
  };

  const Value tree = run(false);
  const Value bytecode = run(true);
  EXPECT_TRUE(same_bits(tree, bytecode))
      << expr_src << ": tree " << show(tree) << " vs vm " << show(bytecode);
}

TEST(VmExpr, ArithmeticMatchesInterpreterBitExactly) {
  expect_tier_equal_expr("int", "1 + 2 * 3");
  expect_tier_equal_expr("float", "7 / 2");
  expect_tier_equal_expr("float", "0.15 + 0.85 * (3.0 / graphSize)");
  expect_tier_equal_expr("float", "1 / 0");     // IEEE inf
  expect_tier_equal_expr("float", "0 / 0");     // IEEE nan bit pattern
  expect_tier_equal_expr("int", "-5 + 2");
  expect_tier_equal_expr("float", "2.5 * 4");   // int operand widening
}

TEST(VmExpr, ComparisonsAndLogicMatchInterpreter) {
  expect_tier_equal_expr("bool", "1 < 2");
  expect_tier_equal_expr("bool", "2 == 2.0");
  expect_tier_equal_expr("bool", "true || (0 / 0) > 0");   // short-circuit
  expect_tier_equal_expr("bool", "false && (0 / 0) > 0");
  expect_tier_equal_expr("bool", "not false");
}

TEST(VmExpr, ControlFlowAndContextLoadsMatchInterpreter) {
  expect_tier_equal_expr("int", "if 1 < 2 then 10 else 20");
  expect_tier_equal_expr("float", "if vertexId == 0 then 0 else infty");
  expect_tier_equal_expr("int",
                         "(let x : int = 4 in let y : int = x + 1 in x * y)");
  expect_tier_equal_expr("int", "(let x : int = 1 in let x : int = 2 in x)");
  expect_tier_equal_expr("float", "min(2.5, 2)");
  expect_tier_equal_expr("int", "max(3, 7)");
  expect_tier_equal_expr("int", "|#out| + |#in| * 10");
  expect_tier_equal_expr("int", "vertexId + 1");
}

// ---------------------------------------------------------------------------
// End-to-end tier equality on the benchmark programs
// ---------------------------------------------------------------------------

struct TierCase {
  const char* name;
  const char* src;
  bool directed;
  bool weighted;
  std::map<std::string, Value> params;
};

void expect_tiers_identical(const TierCase& tc, bool incrementalize) {
  graph::RmatOptions ro;
  ro.directed = tc.directed;
  ro.weighted = tc.weighted;
  const auto g = graph::rmat(96, 384, test::effective_seed(13), ro);
  const auto cp =
      compile(tc.src, CompileOptions{.incrementalize = incrementalize});

  DvRunOptions o;
  o.engine = test::small_engine();
  o.params = tc.params;
  o.tier = ExecTier::kVm;
  const auto vm_r = run_program(cp, g, o);
  o.tier = ExecTier::kTree;
  const auto tree_r = run_program(cp, g, o);

  const std::string label = std::string(tc.name) +
                            (incrementalize ? " (DV) " : " (DV*) ") +
                            test::seed_banner(test::effective_seed(13));
  ASSERT_EQ(vm_r.state.size(), tree_r.state.size()) << label;
  for (std::size_t i = 0; i < vm_r.state.size(); ++i)
    ASSERT_TRUE(same_bits(vm_r.state[i], tree_r.state[i]))
        << label << " state word " << i << ": vm " << show(vm_r.state[i])
        << " vs tree " << show(tree_r.state[i]);
  EXPECT_EQ(vm_r.stats.total_messages_sent(),
            tree_r.stats.total_messages_sent())
      << label;
  EXPECT_EQ(vm_r.stats.total_bytes_sent(), tree_r.stats.total_bytes_sent())
      << label;
  EXPECT_EQ(vm_r.supersteps, tree_r.supersteps) << label;
}

TEST(VmTiers, BenchmarkProgramsBitIdenticalAcrossTiers) {
  const TierCase cases[] = {
      {"PageRank", programs::kPageRank, true, false,
       {{"steps", Value::of_int(8)}}},
      {"SSSP", programs::kSssp, true, true,
       {{"source", Value::of_int(0)}}},
      {"CC", programs::kConnectedComponents, false, false, {}},
      {"HITS", programs::kHits, true, false,
       {{"steps", Value::of_int(4)}}},
  };
  for (const TierCase& tc : cases) {
    expect_tiers_identical(tc, true);
    expect_tiers_identical(tc, false);
  }
}

}  // namespace
}  // namespace deltav::dv
