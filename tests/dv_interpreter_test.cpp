// Expression-level tests of the ΔV interpreter: literals, operators,
// scoping, vertex context, message folds, send loops, and misuse guards.
#include <gtest/gtest.h>

#include <cmath>

#include "dv/compiler.h"
#include "dv/lexer.h"
#include "dv/parser.h"
#include "dv/runtime/interpreter.h"
#include "graph/generators.h"

namespace deltav::dv {
namespace {

/// Compiles `expr_src` into a one-statement program whose body assigns the
/// expression to a float/int/bool field `out`, then evaluates that body for
/// vertex 0 of a 4-cycle and returns the field value.
class ExprFixture {
 public:
  explicit ExprFixture(const std::string& out_type,
                       const std::string& expr_src,
                       const std::string& extra_fields = "")
      : graph_(graph::cycle(4)) {
    const std::string src = "init { local out : " + out_type + " = " +
                            (out_type == "bool" ? "false" : "0") + extra_fields +
                            " };"
                            "step { out = " +
                            expr_src + " }";
    Diagnostics diags;
    prog_ = parse_and_check(src, diags);
    fields_.resize(prog_.fields.size());
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      switch (prog_.fields[i].type) {
        case Type::kBool: fields_[i] = Value::of_bool(false); break;
        case Type::kFloat: fields_[i] = Value::of_float(0); break;
        default: fields_[i] = Value::of_int(0); break;
      }
    }
    scratch_.resize(prog_.scratch.size() + 8, Value::of_int(0));
  }

  Value run() {
    EvalContext ctx;
    ctx.prog = &prog_;
    ctx.graph = &gview_;
    ctx.fields = fields_;
    ctx.scratch = scratch_;
    ctx.has_vertex = true;
    ctx.vertex = 0;
    ctx.iter = 3;
    eval(*prog_.stmts[0].body, ctx);
    return fields_[0];
  }

  graph::CsrGraph graph_;
  graph::GraphView gview_{graph_};
  Program prog_;
  std::vector<Value> fields_;
  std::vector<Value> scratch_;
};

double eval_f(const std::string& e, const std::string& extra = "") {
  return ExprFixture("float", e, extra).run().as_f();
}
std::int64_t eval_i(const std::string& e) {
  return ExprFixture("int", e).run().as_i();
}
bool eval_b(const std::string& e) {
  return ExprFixture("bool", e).run().as_b();
}

TEST(Interp, Arithmetic) {
  EXPECT_EQ(eval_i("1 + 2 * 3"), 7);
  EXPECT_EQ(eval_i("10 - 4 - 3"), 3);  // left assoc
  EXPECT_DOUBLE_EQ(eval_f("7 / 2"), 3.5);  // '/' is float
  EXPECT_EQ(eval_i("-5 + 2"), -3);
  EXPECT_DOUBLE_EQ(eval_f("2.5 * 4"), 10.0);
}

TEST(Interp, DivisionByZeroIsIeee) {
  EXPECT_TRUE(std::isinf(eval_f("1 / 0")));
  EXPECT_TRUE(std::isnan(eval_f("0 / 0")));
}

TEST(Interp, Comparisons) {
  EXPECT_TRUE(eval_b("1 < 2"));
  EXPECT_TRUE(eval_b("2.5 >= 2.5"));
  EXPECT_FALSE(eval_b("3 == 4"));
  EXPECT_TRUE(eval_b("3 != 4"));
  EXPECT_TRUE(eval_b("2 == 2.0"));  // numeric unification
}

TEST(Interp, BooleanShortCircuit) {
  // RHS would divide by zero into a comparison that still works (inf > 0),
  // so use field assignment visibility instead: short-circuit means the
  // second operand of a false && is never evaluated. We can observe this
  // because an || of true short-circuits past a nan comparison.
  EXPECT_TRUE(eval_b("true || (0 / 0) > 0"));
  EXPECT_FALSE(eval_b("false && (0 / 0) > 0"));
  EXPECT_TRUE(eval_b("not false"));
}

TEST(Interp, MinMaxPairOps) {
  EXPECT_EQ(eval_i("min(3, 7)"), 3);
  EXPECT_EQ(eval_i("max(3, 7)"), 7);
  EXPECT_DOUBLE_EQ(eval_f("min(2.5, 2)"), 2.0);
}

TEST(Interp, IfThenElseValue) {
  EXPECT_EQ(eval_i("if 1 < 2 then 10 else 20"), 10);
  EXPECT_EQ(eval_i("if 1 > 2 then 10 else 20"), 20);
  EXPECT_DOUBLE_EQ(eval_f("if vertexId == 0 then 0 else infty"), 0.0);
}

TEST(Interp, LetScoping) {
  // Parenthesized so the let sits in expression position.
  EXPECT_EQ(eval_i("(let x : int = 4 in let y : int = x + 1 in x * y)"),
            20);
  // Shadowing: inner binding wins.
  EXPECT_EQ(eval_i("(let x : int = 1 in let x : int = 2 in x)"), 2);
}

TEST(Interp, GraphBuiltins) {
  EXPECT_EQ(eval_i("graphSize"), 4);    // 4-cycle
  EXPECT_EQ(eval_i("vertexId"), 0);
  EXPECT_EQ(eval_i("|#neighbors|"), 2);  // cycle degree
  EXPECT_TRUE(std::isinf(eval_f("infty")));
}

TEST(Interp, IterVariable) {
  // Fixture sets ctx.iter = 3.
  ExprFixture f("int", "0");
  Diagnostics diags;
  f.prog_ = parse_and_check(
      "init { local out : int = 0 };"
      "iter k { out = k * 2 } until { k >= 5 }",
      diags);
  f.fields_.assign(f.prog_.fields.size(), Value::of_int(0));
  f.scratch_.assign(f.prog_.scratch.size() + 4, Value::of_int(0));
  EXPECT_EQ(f.run().as_i(), 6);
}

TEST(Interp, SequencesReturnLast) {
  EXPECT_EQ(eval_i("(1; 2; 3)"), 3);
}

TEST(Interp, AssignmentCoerces) {
  EXPECT_DOUBLE_EQ(eval_f("3"), 3.0);  // int literal into float field
}

TEST(Interp, FieldReadsOutsideVertexContextRejected) {
  ExprFixture f("float", "1.0");
  EvalContext ctx;
  ctx.prog = &f.prog_;
  ctx.graph = &f.gview_;
  ctx.has_vertex = false;  // global context
  ctx.scratch = f.scratch_;
  EXPECT_THROW(eval(*f.prog_.stmts[0].body, ctx), CheckError);
}

TEST(Interp, UnconvertedAggregationIsCompilerBug) {
  ExprFixture f("float", "+ [ u.out | u <- #neighbors ]");
  EXPECT_THROW(f.run(), CheckError);
}

// ------------------------------ message folds and send loops in isolation

class RecordingSink : public SendSink {
 public:
  struct Sent {
    graph::VertexId dst;
    DvMessage msg;
  };
  void send(graph::VertexId dst, const DvMessage& msg) override {
    sent.push_back({dst, msg});
  }
  std::vector<Sent> sent;
};

TEST(Interp, FoldMessagesNonIncremental) {
  // Compile a ΔV* program so the body contains a non-incremental fold.
  auto cp = compile(
      "init { local a : float = 1.0; local b : float = 0.0 };"
      "iter i { b = + [ u.a | u <- #in ]; a = b } until { i >= 2 }",
      CompileOptions{.incrementalize = false});
  const auto g = graph::cycle(4, /*directed=*/true);
  const graph::GraphView gv{g};
  std::vector<Value> fields = {Value::of_float(1), Value::of_float(0)};
  std::vector<Value> scratch(cp.num_scratch() + 4, Value::of_int(0));
  for (std::size_t i = 0; i < cp.program.scratch.size(); ++i)
    if (cp.program.scratch[i].type == Type::kBool)
      scratch[i] = Value::of_bool(false);

  std::vector<DvMessage> msgs(3);
  for (int i = 0; i < 3; ++i)
    msgs[static_cast<std::size_t>(i)].payload =
        Value::of_float(1.5 * (i + 1));
  RecordingSink sink;
  std::vector<std::uint8_t> wires = {8};

  EvalContext ctx;
  ctx.prog = &cp.program;
  ctx.graph = &gv;
  ctx.fields = fields;
  ctx.scratch = scratch;
  ctx.msgs = msgs;
  ctx.has_vertex = true;
  ctx.vertex = 0;
  ctx.sink = &sink;
  ctx.site_wire = &wires;
  eval(*cp.program.stmts[0].body, ctx);
  EXPECT_DOUBLE_EQ(fields[1].as_f(), 1.5 + 3.0 + 4.5);
  // b was assigned → a was assigned → sends fired along out-edges.
  ASSERT_EQ(sink.sent.size(), 1u);  // directed cycle: one out-neighbor
  EXPECT_EQ(sink.sent[0].dst, 1u);
  EXPECT_EQ(sink.sent[0].msg.wire, 8);
}

TEST(Interp, SendLoopSuppressionMask) {
  auto cp = compile(
      "init { local a : float = 1.0; local b : float = 0.0 };"
      "iter i { b = + [ u.a | u <- #in ]; a = b + 1.0 } until { i >= 2 }",
      CompileOptions{.incrementalize = false});
  const auto g = graph::cycle(4, true);
  const graph::GraphView gv{g};
  std::vector<Value> fields = {Value::of_float(1), Value::of_float(0)};
  std::vector<Value> scratch(cp.num_scratch() + 4, Value::of_bool(false));
  RecordingSink sink;
  std::vector<std::uint8_t> wires = {8};
  EvalContext ctx;
  ctx.prog = &cp.program;
  ctx.graph = &gv;
  ctx.fields = fields;
  ctx.scratch = scratch;
  ctx.has_vertex = true;
  ctx.vertex = 0;
  ctx.sink = &sink;
  ctx.site_wire = &wires;
  ctx.suppress_sites = 1;  // suppress site 0
  eval(*cp.program.stmts[0].body, ctx);
  EXPECT_TRUE(sink.sent.empty());
}

TEST(Interp, HaltSetsFlag) {
  auto cp = compile(
      "init { local a : float = 1.0 };"
      "iter i { a = + [ u.a | u <- #in ] } until { i >= 2 }",
      CompileOptions{});
  const auto g = graph::cycle(4, true);
  const graph::GraphView gv{g};
  std::vector<Value> fields(cp.num_fields(), Value::of_float(0));
  std::vector<Value> scratch(cp.num_scratch() + 4, Value::of_bool(false));
  RecordingSink sink;
  std::vector<std::uint8_t> wires = {8};
  EvalContext ctx;
  ctx.prog = &cp.program;
  ctx.graph = &gv;
  ctx.fields = fields;
  ctx.scratch = scratch;
  ctx.has_vertex = true;
  ctx.vertex = 0;
  ctx.sink = &sink;
  ctx.site_wire = &wires;
  EXPECT_FALSE(ctx.halt_requested);
  eval(*cp.program.stmts[0].body, ctx);
  EXPECT_TRUE(ctx.halt_requested);  // §6.6 halt at body end
}

TEST(Interp, StableReadsContext) {
  Diagnostics diags;
  auto prog = parse_and_check(
      "init { local a : int = 0 }; iter i { a = 1 } until { stable }",
      diags);
  EvalContext ctx;
  ctx.prog = &prog;
  std::vector<Value> scratch(4, Value::of_int(0));
  ctx.scratch = scratch;
  ctx.stable = true;
  EXPECT_TRUE(eval(*prog.stmts[0].until, ctx).as_b());
  ctx.stable = false;
  EXPECT_FALSE(eval(*prog.stmts[0].until, ctx).as_b());
}

}  // namespace
}  // namespace deltav::dv
