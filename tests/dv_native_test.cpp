// Native execution tier: AOT build pipeline, object cache, fallback
// behavior, and bit-exact equivalence against the bytecode VM.
//
// Every test skips (GTEST_SKIP) when the host cannot run the native tier
// at all — sanitizer-instrumented build or no working C++ compiler — so
// the suite is green on hermetic CI images while still exercising the
// full pipeline wherever a toolchain exists.
//
// Cache-behavior tests steer the object cache into a per-test directory
// via DV_NATIVE_CACHE and force per-test digests via DV_NATIVE_CXXFLAGS
// (-D markers): the in-process module registry dedups by digest, so a
// digest reused from an earlier test would hand back a live module and
// mask the disk-cache path under test.

#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dv/codegen/native_module.h"
#include "dv/compiler.h"
#include "dv/obs/obs.h"
#include "dv/programs/programs.h"
#include "dv/runtime/runner.h"
#include "dv/streaming/stream_session.h"
#include "graph/dynamic_graph.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "test_util.h"

namespace deltav::dv {
namespace {

namespace fs = std::filesystem;
using streaming::DvStreamSession;
using streaming::SessionEpoch;
using streaming::SessionOptions;
using test::compile_dv;
using test::small_engine;

#define SKIP_WITHOUT_NATIVE()                                         \
  do {                                                                \
    const std::string& why_ = native::native_unavailable_reason();    \
    if (!why_.empty()) GTEST_SKIP() << "native tier unavailable: " << why_; \
  } while (0)

/// Saves/restores the three native-tier env knobs around each test and
/// points DV_NATIVE_CACHE at a fresh per-test directory.
class NativeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* k : kKeys) {
      const char* v = std::getenv(k);
      saved_.emplace_back(k, v ? std::string(v) : std::string());
      had_.push_back(v != nullptr);
    }
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    cache_ = fs::temp_directory_path() /
             (std::string("dv-native-test-") + info->test_suite_name() + "-" +
              info->name() + "-" + std::to_string(::getpid()));
    fs::create_directories(cache_);
    ::setenv("DV_NATIVE_CACHE", cache_.c_str(), 1);
    // Per-test digest namespace (see the file comment).
    marker_ = std::string("-DDV_NTEST_") + info->test_suite_name() + "_" +
              info->name();
    ::setenv("DV_NATIVE_CXXFLAGS", marker_.c_str(), 1);
  }

  void TearDown() override {
    for (std::size_t i = 0; i < saved_.size(); ++i) {
      if (had_[i])
        ::setenv(saved_[i].first, saved_[i].second.c_str(), 1);
      else
        ::unsetenv(saved_[i].first);
    }
    std::error_code ec;
    fs::remove_all(cache_, ec);
  }

  const fs::path& cache() const { return cache_; }
  const std::string& marker() const { return marker_; }

 private:
  static constexpr const char* kKeys[3] = {"DV_NATIVE_CACHE",
                                           "DV_NATIVE_CXXFLAGS",
                                           "DV_NATIVE_CXX"};
  std::vector<std::pair<const char*, std::string>> saved_;
  std::vector<bool> had_;
  fs::path cache_;
  std::string marker_;
};

DvRunResult run_tier(const CompiledProgram& cp, const graph::CsrGraph& g,
                     ExecTier tier, std::map<std::string, Value> params = {},
                     obs::Collector* collector = nullptr) {
  DvRunOptions o;
  o.engine = small_engine();
  o.tier = tier;
  o.params = std::move(params);
  o.collector = collector;
  return run_program(cp, g, o);
}

/// Requires bit-identical final state (floats compared as bit patterns —
/// the native tier's whole contract) plus identical message/byte/superstep
/// counts.
void expect_bit_identical(const DvRunResult& native, const DvRunResult& vm) {
  ASSERT_EQ(native.num_vertices, vm.num_vertices);
  ASSERT_EQ(native.fields.size(), vm.fields.size());
  EXPECT_EQ(native.supersteps, vm.supersteps);
  EXPECT_EQ(native.stats.total_messages_sent(),
            vm.stats.total_messages_sent());
  EXPECT_EQ(native.stats.total_bytes_sent(), vm.stats.total_bytes_sent());
  for (std::size_t fi = 0; fi < vm.fields.size(); ++fi) {
    const Field& f = vm.fields[fi];
    for (std::size_t v = 0; v < vm.num_vertices; ++v) {
      const Value& a = native.at(static_cast<graph::VertexId>(v),
                                 static_cast<int>(fi));
      const Value& b = vm.at(static_cast<graph::VertexId>(v),
                             static_cast<int>(fi));
      if (f.type == Type::kFloat) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(a.f),
                  std::bit_cast<std::uint64_t>(b.f))
            << f.name << " at vertex " << v << ": " << a.f << " vs " << b.f;
      } else if (f.type == Type::kBool) {
        EXPECT_EQ(a.b, b.b) << f.name << " at vertex " << v;
      } else {
        EXPECT_EQ(a.i, b.i) << f.name << " at vertex " << v;
      }
    }
  }
}

// ------------------------------------------------------- tier equivalence

TEST_F(NativeTest, PageRankMatchesVmBitExact) {
  SKIP_WITHOUT_NATIVE();
  const auto g = graph::erdos_renyi(60, 240, /*seed=*/7);
  const std::map<std::string, Value> params = {
      {"steps", Value::of_int(10)}};
  for (const bool incremental : {true, false}) {
    const auto cp = compile_dv(programs::kPageRank, incremental);
    const auto nat = run_tier(cp, g, ExecTier::kNative, params);
    ASSERT_EQ(nat.tier_used, ExecTier::kNative)
        << "fell back: " << nat.native_fallback;
    EXPECT_TRUE(nat.native_fallback.empty());
    expect_bit_identical(nat, run_tier(cp, g, ExecTier::kVm, params));
  }
}

TEST_F(NativeTest, SsspMatchesVmBitExact) {
  SKIP_WITHOUT_NATIVE();
  const auto g =
      graph::erdos_renyi(50, 200, /*seed=*/11, /*directed=*/true,
                         /*weighted=*/true);
  const auto cp = compile_dv(programs::kSssp);
  const std::map<std::string, Value> params = {{"source", Value::of_int(0)}};
  const auto nat = run_tier(cp, g, ExecTier::kNative, params);
  ASSERT_EQ(nat.tier_used, ExecTier::kNative)
      << "fell back: " << nat.native_fallback;
  expect_bit_identical(nat, run_tier(cp, g, ExecTier::kVm, params));
}

// HITS is the multi-statement builtin (hub and authority statements plus
// an init block) — it exercises per-statement body roots and the
// statement-cursor dispatch, not just a single body.
TEST_F(NativeTest, MultiStatementHitsMatchesVmBitExact) {
  SKIP_WITHOUT_NATIVE();
  const auto g = graph::web_crawl(80, 300, /*seed=*/3);
  const auto cp = compile_dv(programs::kHits);
  const std::map<std::string, Value> params = {{"steps", Value::of_int(4)}};
  const auto nat = run_tier(cp, g, ExecTier::kNative, params);
  ASSERT_EQ(nat.tier_used, ExecTier::kNative)
      << "fell back: " << nat.native_fallback;
  expect_bit_identical(nat, run_tier(cp, g, ExecTier::kVm, params));
}

TEST_F(NativeTest, ConnectedComponentsMatchesVmBitExact) {
  SKIP_WITHOUT_NATIVE();
  const auto g = graph::erdos_renyi(70, 120, /*seed=*/5, /*directed=*/false);
  const auto cp = compile_dv(programs::kConnectedComponents);
  const auto nat = run_tier(cp, g, ExecTier::kNative);
  ASSERT_EQ(nat.tier_used, ExecTier::kNative)
      << "fell back: " << nat.native_fallback;
  expect_bit_identical(nat, run_tier(cp, g, ExecTier::kVm));
}

// ------------------------------------------------------------ object cache

TEST_F(NativeTest, SecondBuildHitsCache) {
  SKIP_WITHOUT_NATIVE();
  const auto cp = compile_dv(programs::kPageRank);
  auto first = native::build_native(cp);
  ASSERT_TRUE(first.program) << first.reason;
  EXPECT_FALSE(first.cache_hit);
  EXPECT_GT(first.compile_seconds, 0.0);
  ASSERT_FALSE(first.digest.empty());
  EXPECT_TRUE(fs::exists(first.object_path));

  // Live-module path: same digest while the first program is alive.
  const auto live = native::build_native(cp);
  ASSERT_TRUE(live.program) << live.reason;
  EXPECT_TRUE(live.cache_hit);
  EXPECT_EQ(live.digest, first.digest);
  EXPECT_EQ(live.object_path, first.object_path);
  EXPECT_EQ(live.compile_seconds, 0.0);

  // Disk path: drop every live reference so the registry entry expires,
  // then rebuild — the cached .so is validated and reused, no compiler.
  first.program.reset();
  const auto disk = [&] {
    auto r = native::build_native(cp);
    return r;
  }();
  ASSERT_TRUE(disk.program) << disk.reason;
  EXPECT_TRUE(disk.cache_hit);
  EXPECT_EQ(disk.digest, first.digest);
  EXPECT_EQ(disk.compile_seconds, 0.0);
}

TEST_F(NativeTest, FlagChangeInvalidatesDigest) {
  SKIP_WITHOUT_NATIVE();
  const auto cp = compile_dv(programs::kPageRank);
  const auto a = native::build_native(cp);
  ASSERT_TRUE(a.program) << a.reason;

  const std::string changed = marker() + "_B";
  ::setenv("DV_NATIVE_CXXFLAGS", changed.c_str(), 1);
  const auto b = native::build_native(cp);
  ASSERT_TRUE(b.program) << b.reason;
  EXPECT_NE(b.digest, a.digest);
  EXPECT_FALSE(b.cache_hit);
  EXPECT_GT(b.compile_seconds, 0.0);
}

TEST_F(NativeTest, SourceChangeInvalidatesDigest) {
  SKIP_WITHOUT_NATIVE();
  const auto a = native::build_native(compile_dv(programs::kPageRank));
  const auto b = native::build_native(compile_dv(programs::kSssp));
  ASSERT_TRUE(a.program) << a.reason;
  ASSERT_TRUE(b.program) << b.reason;
  EXPECT_NE(a.digest, b.digest);
  EXPECT_FALSE(b.cache_hit);
}

TEST_F(NativeTest, CorruptCachedObjectRecompiles) {
  SKIP_WITHOUT_NATIVE();
  const auto cp = compile_dv(programs::kPageRank);
  auto first = native::build_native(cp);
  ASSERT_TRUE(first.program) << first.reason;
  const std::string so_path = first.object_path;
  first.program.reset();  // expire the registry entry

  {
    std::ofstream out(so_path, std::ios::binary | std::ios::trunc);
    out << "this is not a shared object";
  }

  const auto rebuilt = native::build_native(cp);
  ASSERT_TRUE(rebuilt.program) << rebuilt.reason;
  EXPECT_FALSE(rebuilt.cache_hit);  // load failed, recompiled
  EXPECT_GT(rebuilt.compile_seconds, 0.0);
  EXPECT_EQ(rebuilt.digest, first.digest);

  // The recompiled object actually runs and still matches the VM.
  const auto g = graph::erdos_renyi(40, 160, /*seed=*/9);
  const std::map<std::string, Value> params = {{"steps", Value::of_int(5)}};
  const auto nat = run_tier(cp, g, ExecTier::kNative, params);
  ASSERT_EQ(nat.tier_used, ExecTier::kNative)
      << "fell back: " << nat.native_fallback;
  expect_bit_identical(nat, run_tier(cp, g, ExecTier::kVm, params));
}

// ---------------------------------------------------------------- fallback

TEST_F(NativeTest, BrokenToolchainFallsBackToVmWithCounter) {
  SKIP_WITHOUT_NATIVE();
  // A corrupt cached object *and* a broken compiler: the recompile cannot
  // succeed, so the runner must land on the VM — announced, counted,
  // correct.
  const auto cp = compile_dv(programs::kPageRank);
  auto first = native::build_native(cp);
  ASSERT_TRUE(first.program) << first.reason;
  const std::string so_path = first.object_path;
  first.program.reset();
  {
    std::ofstream out(so_path, std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  ::setenv("DV_NATIVE_CXX", "/nonexistent/dv-native-cxx", 1);

  obs::Collector collector;
  const auto g = graph::erdos_renyi(30, 90, /*seed=*/4);
  const std::map<std::string, Value> params = {{"steps", Value::of_int(5)}};
  const auto got = run_tier(cp, g, ExecTier::kNative, params, &collector);
  EXPECT_EQ(got.tier_used, ExecTier::kVm);
  EXPECT_FALSE(got.native_fallback.empty());

  const auto snap = collector.metrics.snapshot();
  EXPECT_EQ(snap.counter("dv.native_fallbacks"), 1u);
  // One cause-suffixed series too (compile_failed here: DV_NATIVE_CXX is
  // authoritative, a bogus value fails the compile rather than falling
  // back to PATH discovery).
  EXPECT_EQ(snap.counter("dv.native_fallbacks.compile_failed"), 1u);

  // The fallback run is still correct.
  ::unsetenv("DV_NATIVE_CXX");
  expect_bit_identical(got, run_tier(cp, g, ExecTier::kVm, params));
}

TEST_F(NativeTest, CleanNativeRunReportsZeroFallbacks) {
  SKIP_WITHOUT_NATIVE();
  obs::Collector collector;
  const auto cp = compile_dv(programs::kPageRank);
  const auto g = graph::erdos_renyi(30, 90, /*seed=*/4);
  const auto got = run_tier(cp, g, ExecTier::kNative,
                            {{"steps", Value::of_int(5)}}, &collector);
  ASSERT_EQ(got.tier_used, ExecTier::kNative)
      << "fell back: " << got.native_fallback;
  const auto snap = collector.metrics.snapshot();
  EXPECT_EQ(snap.counter("dv.native_fallbacks"), 0u);
  const auto it = snap.histograms.find("dv.native_compile_seconds");
  if (it != snap.histograms.end()) {
    EXPECT_GE(it->second.count, 1u);
  }
}

// --------------------------------------------------------------- streaming

TEST_F(NativeTest, StreamingWarmEpochMatchesVm) {
  SKIP_WITHOUT_NATIVE();
  constexpr const char* kSum = R"(
init { local mass : float = 1.0 + vertexId; local seen : float = 0.0 };
iter i { seen = + [ u.mass | u <- #in ] } until { i >= 2 }
)";
  const auto cp = compile_dv(kSum);

  graph::GraphBuilder b(6, /*directed=*/true);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(0, 1);
  b.add_edge(4, 5);
  const auto base = b.build();

  const auto run_session = [&](ExecTier tier) {
    SessionOptions o;
    o.run.engine = small_engine();
    o.run.tier = tier;
    DvStreamSession s(cp, base, o);
    const auto cold = s.converge();
    EXPECT_EQ(cold.tier_used, tier) << "fell back: " << cold.native_fallback;
    graph::MutationBatch batch;
    batch.insert_edge(0, 3);
    batch.insert_edge(5, 3);
    const SessionEpoch ep = s.apply(batch);
    EXPECT_TRUE(ep.warm) << "blocked: " << (ep.blocker ? ep.blocker : "?");
    graph::MutationBatch batch2;
    batch2.remove_edge(2, 3);
    const SessionEpoch ep2 = s.apply(batch2);
    EXPECT_TRUE(ep2.warm) << "blocked: " << (ep2.blocker ? ep2.blocker : "?");
    return s.result();
  };

  expect_bit_identical(run_session(ExecTier::kNative),
                       run_session(ExecTier::kVm));
}

}  // namespace
}  // namespace deltav::dv
