// Bounded stream-differential fuzz smoke: generated (program, graph,
// mutation-stream) triples driven through warm streaming sessions and
// cross-checked per batch against from-scratch ΔV* runs on the mutated
// graph (stream_gen.h). The ≥500-triple acceptance soak lives in
// `tools/dv_fuzz --stream`.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.h"
#include "dv/compiler.h"
#include "dv/testing/stream_gen.h"
#include "test_util.h"

namespace deltav::dv::testing {
namespace {

constexpr int kSmokeCases = 60;

TEST(StreamFuzzGenerator, CoversFamiliesAndCompiles) {
  const std::uint64_t seed = test::effective_seed(0x57AE4A5E);
  Rng rng(seed);
  std::set<std::string> families;
  bool saw_blocked = false, saw_vertex_op = false, saw_removal = false;
  for (int k = 0; k < 200; ++k) {
    Rng crng = rng.split();
    const StreamCase sc = generate_stream_case(crng);
    SCOPED_TRACE(test::seed_banner(seed) + " case " + std::to_string(k) +
                 "\n" + describe(sc));
    ASSERT_NO_THROW(compile(sc.source));
    ASSERT_FALSE(sc.batches.empty() && sc.expect_warm == false);
    families.insert(sc.family);
    saw_blocked |= !sc.expect_warm;
    for (const auto& b : sc.batches) {
      saw_vertex_op |= b.add_vertices > 0 || !b.detach_vertices.empty();
      for (const auto& e : b.edges) saw_removal |= !e.insert;
    }
  }
  EXPECT_GE(families.size(), 8u) << "family mix collapsed";
  EXPECT_TRUE(saw_blocked) << "blocked family should appear";
  EXPECT_TRUE(saw_vertex_op);
  EXPECT_TRUE(saw_removal);
}

TEST(StreamFuzzSmoke, WarmSessionsMatchFromScratchRuns) {
  const std::uint64_t seed = test::effective_seed(0x57AE4D1F);
  Rng rng(seed);
  int checked = 0;
  for (int k = 0; k < kSmokeCases; ++k) {
    Rng crng = rng.split();
    const StreamCase sc = generate_stream_case(crng);
    const auto fail = check_stream_case(sc);
    ASSERT_FALSE(fail.has_value())
        << test::seed_banner(seed) << " case " << k << " [" << fail->check
        << "] " << fail->detail << "\n"
        << describe(sc);
    ++checked;
  }
  EXPECT_EQ(checked, kSmokeCases);
}

TEST(StreamFuzzSmoke, OddWorkerCountUsesScanAllScheduler) {
  const std::uint64_t seed = test::effective_seed(0x57AE0DD);
  Rng rng(seed);
  StreamDiffOptions opts;
  opts.workers = 3;  // kBlock + kScanAll pairing
  for (int k = 0; k < 10; ++k) {
    Rng crng = rng.split();
    const StreamCase sc = generate_stream_case(crng);
    const auto fail = check_stream_case(sc, opts);
    ASSERT_FALSE(fail.has_value())
        << test::seed_banner(seed) << " case " << k << " [" << fail->check
        << "] " << fail->detail << "\n"
        << describe(sc);
  }
}

}  // namespace
}  // namespace deltav::dv::testing
