// Streaming epochs: mutation batches applied between convergences, warm
// incremental re-execution cross-checked against from-scratch runs.
//
// Each warm test drives a DvStreamSession through one or more batches and
// requires (a) the epoch actually resumed warm (ep.warm, no blocker), and
// (b) the session state is value-identical to a cold ΔV run on the
// materialized mutated graph. The operator battery covers all six
// aggregations, with the absorbing-element transitions of ×/&&/|| (§6.4.1
// three-field treatment) triggered *by a mutation* rather than by normal
// execution.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "dv/programs/programs.h"
#include "dv/streaming/mutation_io.h"
#include "dv/streaming/stream_session.h"
#include "graph/dynamic_graph.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "test_util.h"

namespace deltav {
namespace {

using dv::streaming::DvStreamSession;
using dv::streaming::SessionEpoch;
using dv::streaming::SessionOptions;
using graph::MutationBatch;
using test::compile_dv;
using test::small_engine;

SessionOptions session_opts(dv::ExecTier tier = dv::ExecTier::kVm) {
  SessionOptions o;
  o.run.engine = small_engine();
  o.run.tier = tier;
  return o;
}

/// Cold oracle: a from-scratch run of the same compiled program on the
/// session's current (mutated) topology.
dv::DvRunResult oracle(const dv::CompiledProgram& cp,
                       const DvStreamSession& s,
                       const dv::DvRunOptions& run = {}) {
  const graph::CsrGraph snap = s.graph().materialize();
  dv::DvRunOptions o = run;
  o.engine = small_engine();
  return dv::run_program(cp, snap, o);
}

/// Compares every user-visible field column (floats to tolerance —
/// warm patching reassociates float folds; ints/bools exactly).
void expect_state_matches(const dv::DvRunResult& got,
                          const dv::DvRunResult& want, double tol = 1e-9) {
  ASSERT_EQ(got.num_vertices, want.num_vertices);
  for (std::size_t fi = 0; fi < want.fields.size(); ++fi) {
    const dv::Field& f = want.fields[fi];
    if (f.origin != dv::Field::Origin::kUser) continue;
    if (f.type == dv::Type::kFloat) {
      test::expect_close(got.field_as_double(f.name),
                         want.field_as_double(f.name), tol);
    } else {
      const auto a = got.field_as_int(f.name);
      const auto b = want.field_as_int(f.name);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t v = 0; v < a.size(); ++v)
        EXPECT_EQ(a[v], b[v]) << f.name << " at vertex " << v;
    }
  }
}

/// Asserts the epoch ran warm and the session agrees with the cold oracle.
void expect_warm_and_correct(const dv::CompiledProgram& cp,
                             DvStreamSession& s, const SessionEpoch& ep,
                             double tol = 1e-9) {
  EXPECT_TRUE(ep.warm) << "blocked: " << (ep.blocker ? ep.blocker : "?");
  expect_state_matches(s.result(), oracle(cp, s), tol);
}

/// 6-vertex directed weighted graph: a small diamond plus a tail.
graph::CsrGraph weighted_diamond() {
  graph::GraphBuilder b(6, /*directed=*/true);
  b.keep_weights(true);
  b.add_edge(1, 3, 2.0);
  b.add_edge(2, 3, 4.0);
  b.add_edge(3, 4, 1.0);
  b.add_edge(0, 1, 1.5);
  b.add_edge(4, 5, 3.0);
  return b.build();
}

// --------------------------------------------------------------- sum (+)

constexpr const char* kSumPublish = R"(
init { local mass : float = 1.0 + vertexId; local seen : float = 0.0 };
iter i { seen = + [ u.mass | u <- #in ] } until { i >= 2 }
)";

constexpr const char* kSumWeighted = R"(
init { local mass : float = 1.0 + vertexId; local seen : float = 0.0 };
iter i { seen = + [ u.mass * u.edge | u <- #in ] } until { i >= 2 }
)";

TEST(StreamSum, EdgeInsert) {
  const auto cp = compile_dv(kSumPublish);
  DvStreamSession s(cp, weighted_diamond(), session_opts());
  s.converge();
  MutationBatch b;
  b.insert_edge(0, 3);
  b.insert_edge(5, 3);
  expect_warm_and_correct(cp, s, s.apply(b));
}

TEST(StreamSum, EdgeDelete) {
  const auto cp = compile_dv(kSumPublish);
  DvStreamSession s(cp, weighted_diamond(), session_opts());
  s.converge();
  MutationBatch b;
  b.remove_edge(2, 3);
  const SessionEpoch ep = s.apply(b);
  expect_warm_and_correct(cp, s, ep);
  // v3's acc lost exactly v2's contribution.
  EXPECT_NEAR(s.result().field_as_double("seen")[3], 2.0, 1e-12);
}

TEST(StreamSum, WeightChangeLastWriteWins) {
  const auto cp = compile_dv(kSumWeighted);
  DvStreamSession s(cp, weighted_diamond(), session_opts());
  s.converge();
  MutationBatch b;
  b.insert_edge(2, 3, 10.0);  // existing edge: weight 4 → 10 in place
  const SessionEpoch ep = s.apply(b);
  expect_warm_and_correct(cp, s, ep);
  EXPECT_NEAR(s.result().field_as_double("seen")[3],
              2.0 * 2.0 + 3.0 * 10.0, 1e-9);
}

TEST(StreamSum, VertexAddAndConnect) {
  const auto cp = compile_dv(kSumPublish);
  DvStreamSession s(cp, weighted_diamond(), session_opts());
  s.converge();
  MutationBatch b;
  b.add_vertices = 2;  // ids 6, 7
  b.insert_edge(6, 3);
  b.insert_edge(3, 7);
  b.insert_edge(6, 7);
  expect_warm_and_correct(cp, s, s.apply(b));
  EXPECT_EQ(s.result().num_vertices, 8u);
  // New vertex 7 aggregates mass(3) + mass(6) = 4 + 7.
  EXPECT_NEAR(s.result().field_as_double("seen")[7], 11.0, 1e-9);
}

TEST(StreamSum, VertexDetach) {
  const auto cp = compile_dv(kSumPublish);
  DvStreamSession s(cp, weighted_diamond(), session_opts());
  s.converge();
  MutationBatch b;
  b.detach_vertices.push_back(3);  // drops 1→3, 2→3, 3→4
  const SessionEpoch ep = s.apply(b);
  expect_warm_and_correct(cp, s, ep);
  EXPECT_NEAR(s.result().field_as_double("seen")[3], 0.0, 1e-12);
  EXPECT_NEAR(s.result().field_as_double("seen")[4], 0.0, 1e-12);
}

TEST(StreamSum, MultiBatchRandomizedAgainstOracle) {
  const auto cp = compile_dv(kSumPublish);
  const std::uint64_t seed = test::effective_seed(41);
  Rng rng(seed);
  graph::CsrGraph base = test::small_directed(11);
  DvStreamSession s(cp, base, session_opts());
  s.converge();
  std::size_t n = base.num_vertices();
  for (int batch = 0; batch < 8; ++batch) {
    MutationBatch b;
    for (int k = 0; k < 6; ++k) {
      const auto u = static_cast<graph::VertexId>(rng.next_below(n));
      const auto v = static_cast<graph::VertexId>(rng.next_below(n));
      if (rng.next_below(2))
        b.insert_edge(u, v);
      else
        b.remove_edge(u, v);
    }
    if (batch == 3) b.add_vertices = 1;
    const SessionEpoch ep = s.apply(b);
    n = s.result().num_vertices;
    EXPECT_TRUE(ep.warm) << test::seed_banner(seed);
    expect_state_matches(s.result(), oracle(cp, s));
  }
}

// ----------------------------------------------------------- product (×)

constexpr const char* kProdPublish = R"(
init {
  local mass : float = if vertexId == 0 then 0.0 else 1.0 + vertexId;
  local p : float = 1.0
};
iter i { p = * [ u.mass | u <- #in ] } until { i >= 2 }
)";

TEST(StreamProd, MutationEntersAndLeavesAbsorbingZero) {
  const auto cp = compile_dv(kProdPublish);
  DvStreamSession s(cp, weighted_diamond(), session_opts());
  s.converge();
  // Converged: p(3) = mass(1) × mass(2) = 2 × 3 = 6.
  ASSERT_NEAR(s.result().field_as_double("p")[3], 6.0, 1e-9);

  // Inserting 0→3 injects an absorbing 0 (nnAcc keeps 6, aggNulls = 1).
  MutationBatch enter;
  enter.insert_edge(0, 3);
  expect_warm_and_correct(cp, s, s.apply(enter));
  EXPECT_EQ(s.result().field_as_double("p")[3], 0.0);

  // Removing it retracts the null: the accumulator must *recover* the
  // non-null product — impossible without the three-field treatment.
  MutationBatch leave;
  leave.remove_edge(0, 3);
  expect_warm_and_correct(cp, s, s.apply(leave));
  EXPECT_NEAR(s.result().field_as_double("p")[3], 6.0, 1e-9);
}

TEST(StreamProd, NonNullRetraction) {
  const auto cp = compile_dv(kProdPublish);
  DvStreamSession s(cp, weighted_diamond(), session_opts());
  s.converge();
  MutationBatch b;
  b.remove_edge(1, 3);  // p(3): 6 → 3 via ratio retraction
  expect_warm_and_correct(cp, s, s.apply(b));
  EXPECT_NEAR(s.result().field_as_double("p")[3], 3.0, 1e-9);
}

// ----------------------------------------------------------- min / max

constexpr const char* kMinPublish = R"(
init { local mass : float = 1.0 + vertexId; local m : float = infty };
iter i { m = min [ u.mass | u <- #in ] } until { i >= 2 }
)";

constexpr const char* kMaxPublish = R"(
init { local mass : int = vertexId; local m : int = 0 };
iter i { m = max [ u.mass | u <- #in ] } until { i >= 2 }
)";

TEST(StreamMin, InsertOnlyRefoldsWarm) {
  const auto cp = compile_dv(kMinPublish);
  DvStreamSession s(cp, weighted_diamond(), session_opts());
  s.converge();
  MutationBatch b;
  b.insert_edge(0, 3);  // mass(0) = 1 undercuts the current min 2
  expect_warm_and_correct(cp, s, s.apply(b));
  EXPECT_NEAR(s.result().field_as_double("m")[3], 1.0, 1e-12);
}

TEST(StreamMax, InsertOnlyRefoldsWarm) {
  const auto cp = compile_dv(kMaxPublish);
  DvStreamSession s(cp, weighted_diamond(), session_opts());
  s.converge();
  MutationBatch b;
  b.insert_edge(5, 3);
  expect_warm_and_correct(cp, s, s.apply(b));
  EXPECT_EQ(s.result().field_as_int("m")[3], 5);
}

TEST(StreamMin, RemovalFallsBackColdWithMemoOff) {
  // minmax_memo_k = 0 restores the legacy blocker: min cannot retract a
  // removed extremum without a retraction memo (DESIGN.md §11).
  const auto cp = compile_dv(kMinPublish);
  SessionOptions o = session_opts();
  o.minmax_memo_k = 0;
  DvStreamSession s(cp, weighted_diamond(), o);
  s.converge();
  MutationBatch b;
  b.remove_edge(1, 3);  // removes the minimal contribution
  const SessionEpoch ep = s.apply(b);
  EXPECT_FALSE(ep.warm);
  ASSERT_NE(ep.blocker, nullptr);
  EXPECT_NE(std::string(ep.blocker).find("min/max"), std::string::npos);
  // The fallback still lands on the right answer.
  expect_state_matches(s.result(), oracle(cp, s));
  EXPECT_NEAR(s.result().field_as_double("m")[3], 3.0, 1e-12);
}

TEST(StreamMin, RemovalStaysWarmWithMemoOn) {
  // Default SessionOptions carry minmax_memo_k = 8: the k-best memo
  // retracts the lost extremum in O(k) and the epoch stays warm.
  const auto cp = compile_dv(kMinPublish);
  DvStreamSession s(cp, weighted_diamond(), session_opts());
  s.converge();
  EXPECT_TRUE(s.memo_path());
  MutationBatch b;
  b.remove_edge(1, 3);  // removes the minimal contribution
  expect_warm_and_correct(cp, s, s.apply(b));
  EXPECT_NEAR(s.result().field_as_double("m")[3], 3.0, 1e-12);
}

// ------------------------------------------------------------ && and ||

constexpr const char* kAndPublish = R"(
init { local flag : bool = vertexId != 0; local all : bool = true };
iter i { all = && [ u.flag | u <- #in ] } until { i >= 2 }
)";

constexpr const char* kOrPublish = R"(
init { local flag : bool = vertexId == 0; local any : bool = false };
iter i { any = || [ u.flag | u <- #in ] } until { i >= 2 }
)";

TEST(StreamAnd, MutationEntersAndLeavesAbsorbingFalse) {
  const auto cp = compile_dv(kAndPublish);
  DvStreamSession s(cp, weighted_diamond(), session_opts());
  s.converge();
  ASSERT_TRUE(s.result().field_as_int("all")[3] != 0);

  MutationBatch enter;  // vertex 0's false flag reaches v3
  enter.insert_edge(0, 3);
  expect_warm_and_correct(cp, s, s.apply(enter));
  EXPECT_EQ(s.result().field_as_int("all")[3], 0);

  MutationBatch leave;  // retract it: all(3) must flip back to true
  leave.remove_edge(0, 3);
  expect_warm_and_correct(cp, s, s.apply(leave));
  EXPECT_NE(s.result().field_as_int("all")[3], 0);
}

TEST(StreamOr, MutationEntersAndLeavesAbsorbingTrue) {
  const auto cp = compile_dv(kOrPublish);
  DvStreamSession s(cp, weighted_diamond(), session_opts());
  s.converge();
  ASSERT_EQ(s.result().field_as_int("any")[3], 0);

  MutationBatch enter;  // vertex 0's true flag reaches v3
  enter.insert_edge(0, 3);
  expect_warm_and_correct(cp, s, s.apply(enter));
  EXPECT_NE(s.result().field_as_int("any")[3], 0);

  MutationBatch leave;
  leave.remove_edge(0, 3);
  expect_warm_and_correct(cp, s, s.apply(leave));
  EXPECT_EQ(s.result().field_as_int("any")[3], 0);
}

// -------------------------------------------- relax-style programs (CC, SSSP)

TEST(StreamRelax, ConnectedComponentsInsertOnly) {
  const auto cp = compile_dv(dv::programs::kConnectedComponents);
  graph::GraphBuilder b(8, /*directed=*/false);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(4, 5);
  b.add_edge(6, 7);
  DvStreamSession s(cp, b.build(), session_opts());
  s.converge();
  ASSERT_EQ(s.result().field_as_int("comp")[5], 4);

  MutationBatch join;  // merge {4,5} into {0,1,2}; 3 stays isolated
  join.insert_edge(2, 4);
  expect_warm_and_correct(cp, s, s.apply(join));
  EXPECT_EQ(s.result().field_as_int("comp")[5], 0);
  EXPECT_EQ(s.result().field_as_int("comp")[3], 3);
  EXPECT_EQ(s.result().field_as_int("comp")[7], 6);
}

TEST(StreamRelax, SsspInsertOnlyShortcut) {
  const auto cp = compile_dv(dv::programs::kSssp);
  auto opts = session_opts();
  opts.run.params = {{"source", dv::Value::of_int(0)}};
  DvStreamSession s(cp, weighted_diamond(), opts);
  s.converge();
  // 0 →(1.5) 1 →(2) 3: dist(3) = 3.5.
  ASSERT_NEAR(s.result().field_as_double("dist")[3], 3.5, 1e-12);

  MutationBatch b;
  b.insert_edge(0, 3, 0.5);  // direct shortcut
  const SessionEpoch ep = s.apply(b);
  EXPECT_TRUE(ep.warm) << "blocked: " << (ep.blocker ? ep.blocker : "?");
  expect_state_matches(s.result(), oracle(cp, s, opts.run));
  EXPECT_NEAR(s.result().field_as_double("dist")[3], 0.5, 1e-12);
  EXPECT_NEAR(s.result().field_as_double("dist")[4], 1.5, 1e-12);
}

// ------------------------------------------------------------- blockers

TEST(StreamBlockers, NonIncrementalResumesCold) {
  const auto cp = compile_dv(kSumPublish, /*incremental=*/false);
  DvStreamSession s(cp, weighted_diamond(), session_opts());
  s.converge();
  MutationBatch b;
  b.insert_edge(0, 3);
  const SessionEpoch ep = s.apply(b);
  EXPECT_FALSE(ep.warm);
  ASSERT_NE(ep.blocker, nullptr);
  EXPECT_NE(std::string(ep.blocker).find("not incrementalized"),
            std::string::npos);
  expect_state_matches(s.result(), oracle(cp, s));
}

TEST(StreamBlockers, GraphSizeBlocksOnlyVertexCountChanges) {
  constexpr const char* src = R"(
init { local mass : float = graphSize; local seen : float = 0.0 };
iter i { seen = + [ u.mass | u <- #in ] } until { i >= 2 }
)";
  const auto cp = compile_dv(src);
  DvStreamSession s(cp, weighted_diamond(), session_opts());
  s.converge();

  MutationBatch edges_only;
  edges_only.insert_edge(0, 3);
  expect_warm_and_correct(cp, s, s.apply(edges_only));

  MutationBatch grow;
  grow.add_vertices = 1;
  grow.insert_edge(6, 3);
  const SessionEpoch ep = s.apply(grow);
  EXPECT_FALSE(ep.warm);
  ASSERT_NE(ep.blocker, nullptr);
  EXPECT_NE(std::string(ep.blocker).find("graphSize"), std::string::npos);
  expect_state_matches(s.result(), oracle(cp, s));
}

TEST(StreamBlockers, IterReadingBodyResumesCold) {
  constexpr const char* src = R"(
init { local mass : float = 1.0 + vertexId; local seen : float = 0.0 };
iter i { seen = + [ u.mass | u <- #in ] + i } until { i >= 2 }
)";
  const auto cp = compile_dv(src);
  DvStreamSession s(cp, weighted_diamond(), session_opts());
  s.converge();
  MutationBatch b;
  b.insert_edge(0, 3);
  const SessionEpoch ep = s.apply(b);
  EXPECT_FALSE(ep.warm);
  ASSERT_NE(ep.blocker, nullptr);
  EXPECT_NE(std::string(ep.blocker).find("iteration variable"),
            std::string::npos);
  expect_state_matches(s.result(), oracle(cp, s));
}

TEST(StreamBlockers, IterBoundedFeedbackResumesCold) {
  // Fixed-iteration PageRank: the send expression feeds on `rank`, which
  // the body assigns, and the until is iteration-bounded — the loop count
  // is semantic, so a warm resume (which restarts `i` at 1) would run the
  // recurrence up to 3 extra iterations past the from-scratch answer.
  constexpr const char* src = R"(
init { local rank : float = 1.0 };
iter i {
  let s : float = + [ u.rank | u <- #in ] in
  rank = 0.15 + 0.85 * (s / graphSize)
} until { i >= 3 }
)";
  const auto cp = compile_dv(src);
  DvStreamSession s(cp, weighted_diamond(), session_opts());
  s.converge();
  MutationBatch b;
  b.insert_edge(0, 3);
  const SessionEpoch ep = s.apply(b);
  EXPECT_FALSE(ep.warm);
  ASSERT_NE(ep.blocker, nullptr);
  EXPECT_NE(std::string(ep.blocker).find("feedback"), std::string::npos);
  expect_state_matches(s.result(), oracle(cp, s));
}

TEST(StreamBlockers, IterBoundedPublishStaysWarm) {
  // The dual of the feedback case: the until reads `i`, but the sent
  // `mass` is assigned only in init, so every iteration past the first is
  // a no-op and the replayed loop count cannot matter.
  const auto cp = compile_dv(kSumPublish);
  DvStreamSession s(cp, weighted_diamond(), session_opts());
  s.converge();
  MutationBatch b;
  b.insert_edge(0, 3);
  expect_warm_and_correct(cp, s, s.apply(b));
}

TEST(StreamBlockers, ForceColdOption) {
  const auto cp = compile_dv(kSumPublish);
  auto opts = session_opts();
  opts.force_cold = true;
  DvStreamSession s(cp, weighted_diamond(), opts);
  s.converge();
  MutationBatch b;
  b.insert_edge(0, 3);
  const SessionEpoch ep = s.apply(b);
  EXPECT_FALSE(ep.warm);
  expect_state_matches(s.result(), oracle(cp, s));
}

// ----------------------------------------------------- session mechanics

TEST(StreamSession, RedundantBatchIsNoop) {
  const auto cp = compile_dv(kSumPublish);
  DvStreamSession s(cp, weighted_diamond(), session_opts());
  s.converge();
  MutationBatch b;
  b.insert_edge(1, 3, 2.0);  // exists with this exact weight
  b.remove_edge(0, 5);       // absent
  const SessionEpoch ep = s.apply(b);
  EXPECT_TRUE(ep.warm);
  EXPECT_EQ(ep.stats.supersteps, 0u);
  EXPECT_EQ(ep.stats.woken, 0u);
  expect_state_matches(s.result(), oracle(cp, s));
}

TEST(StreamSession, CompactionPreservesState) {
  const auto cp = compile_dv(kSumPublish);
  auto opts = session_opts();
  opts.compact_threshold = 0.0;  // compact after every batch
  DvStreamSession s(cp, weighted_diamond(), opts);
  s.converge();
  MutationBatch b1;
  b1.insert_edge(0, 3);
  const SessionEpoch e1 = s.apply(b1);
  EXPECT_TRUE(e1.compacted);
  EXPECT_EQ(s.graph().overlay_vertices(), 0u);
  expect_state_matches(s.result(), oracle(cp, s));
  // A second warm batch over the compacted base keeps working.
  MutationBatch b2;
  b2.remove_edge(0, 3);
  expect_warm_and_correct(cp, s, s.apply(b2));
}

TEST(StreamSession, TiersAgreeAcrossWarmEpochs) {
  const auto cp = compile_dv(kSumPublish);
  DvStreamSession vm(cp, weighted_diamond(), session_opts(dv::ExecTier::kVm));
  DvStreamSession tree(cp, weighted_diamond(),
                       session_opts(dv::ExecTier::kTree));
  vm.converge();
  tree.converge();
  for (int batch = 0; batch < 3; ++batch) {
    MutationBatch b;
    if (batch == 0) b.insert_edge(0, 3);
    if (batch == 1) b.remove_edge(2, 3);
    if (batch == 2) {
      b.add_vertices = 1;
      b.insert_edge(6, 4);
    }
    const SessionEpoch ev = vm.apply(b);
    const SessionEpoch et = tree.apply(b);
    EXPECT_TRUE(ev.warm);
    EXPECT_TRUE(et.warm);
    const auto rv = vm.result();
    const auto rt = tree.result();
    // Bit-exact across tiers: same supersteps, same full state — the
    // contract the differential fuzzer enforces, extended to epochs.
    EXPECT_EQ(ev.stats.supersteps, et.stats.supersteps);
    ASSERT_EQ(rv.state.size(), rt.state.size());
    const auto a = rv.field_as_double("seen");
    const auto c = rt.field_as_double("seen");
    for (std::size_t v = 0; v < a.size(); ++v)
      EXPECT_EQ(a[v], c[v]) << "vertex " << v;
  }
}

TEST(StreamSession, ApplyBeforeConvergeThrows) {
  const auto cp = compile_dv(kSumPublish);
  DvStreamSession s(cp, weighted_diamond(), session_opts());
  MutationBatch b;
  b.insert_edge(0, 3);
  EXPECT_THROW(s.apply(b), CheckError);
}

// ---------------------------------------------------------- mutation IO

TEST(MutationIo, RoundTrips) {
  const std::string text =
      "# stream\n"
      "+ 0 3 2.5\n"
      "- 1 3\n"
      "addv 2\n"
      "delv 4\n"
      "commit\n"
      "+ 6 7 1\n"
      "commit\n";
  std::istringstream in(text);
  const auto batches = dv::streaming::read_mutation_stream(in);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].edges.size(), 2u);
  EXPECT_TRUE(batches[0].edges[0].insert);
  EXPECT_DOUBLE_EQ(batches[0].edges[0].weight, 2.5);
  EXPECT_FALSE(batches[0].edges[1].insert);
  EXPECT_EQ(batches[0].add_vertices, 2u);
  ASSERT_EQ(batches[0].detach_vertices.size(), 1u);
  EXPECT_EQ(batches[0].detach_vertices[0], 4u);
  EXPECT_EQ(batches[1].edges.size(), 1u);

  std::ostringstream out;
  dv::streaming::write_mutation_stream(batches, out);
  std::istringstream in2(out.str());
  const auto again = dv::streaming::read_mutation_stream(in2);
  ASSERT_EQ(again.size(), batches.size());
  EXPECT_EQ(again[0].edges.size(), batches[0].edges.size());
  EXPECT_EQ(again[0].add_vertices, batches[0].add_vertices);
  EXPECT_EQ(again[1].edges.size(), batches[1].edges.size());
}

TEST(MutationIo, OmittedWeightDefaultsToOne) {
  // `ls >> w` on an exhausted stream zeroes w since C++11; the optional
  // form `+ u v` must still insert the documented default 1.0.
  std::istringstream in("+ 0 1\n+ 1 2 0.25\n");
  const auto batches = dv::streaming::read_mutation_stream(in);
  ASSERT_EQ(batches.size(), 1u);
  ASSERT_EQ(batches[0].edges.size(), 2u);
  EXPECT_DOUBLE_EQ(batches[0].edges[0].weight, 1.0);
  EXPECT_DOUBLE_EQ(batches[0].edges[1].weight, 0.25);
}

TEST(MutationIo, BlankLineSeparatesBatches) {
  std::istringstream in("+ 0 1\n\n+ 1 2\n");
  const auto batches = dv::streaming::read_mutation_stream(in);
  ASSERT_EQ(batches.size(), 2u);
}

TEST(MutationIo, MalformedLineThrowsWithLineNumber) {
  std::istringstream in("+ 0 1\nbogus 3\n");
  try {
    dv::streaming::read_mutation_stream(in);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(MutationIo, TrailingGarbageRejectedPerOp) {
  // Every op must consume its line in full — `+ 0 1 2.0 junk` silently
  // dropping `junk` would apply a different mutation than written.
  const char* bad[] = {
      "+ 0 1 2.0 junk\n", "+ 0 1 2.0 3.0\n", "- 0 1 junk\n",
      "addv 2 junk\n",    "delv 3 junk\n",   "commit junk\n",
  };
  for (const char* text : bad) {
    std::istringstream in(std::string("+ 5 6\n") + text);
    try {
      dv::streaming::read_mutation_stream(in);
      FAIL() << "expected CheckError for: " << text;
    } catch (const CheckError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("line 2"), std::string::npos) << text << what;
      EXPECT_NE(what.find("trailing garbage"), std::string::npos)
          << text << what;
    }
  }
}

TEST(MutationIo, NonNumericWeightRejected) {
  // A half-numeric token is garbage, not a weight: `1x` must not parse
  // as 1.0 with `x` dropped.
  for (const char* text : {"+ 0 1 1x\n", "+ 0 1 x\n"}) {
    std::istringstream in(text);
    try {
      dv::streaming::read_mutation_stream(in);
      FAIL() << "expected CheckError for: " << text;
    } catch (const CheckError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("line 1"), std::string::npos) << what;
      EXPECT_NE(what.find("numeric weight"), std::string::npos) << what;
    }
  }
}

}  // namespace
}  // namespace deltav
