// Property tests for Δ-message synthesis: Eq. 11 (x ⊞ m′ ≃ (x ⊞ m) ⊞
// ∆_m(m′)) must hold over arbitrary update streams for every operator,
// including absorbing-element transitions, and the combiner must be
// commutative/associative-compatible with delta application.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dv/runtime/delta.h"
#include "dv/runtime/message.h"

namespace deltav::dv {
namespace {

/// Simulates one receiver accumulator fed by `senders` independent value
/// streams, comparing the incremental path (synthesize/apply) against
/// recomputing the fold from scratch each round.
struct Harness {
  AggOp op;
  Type type;
  Value acc, nn, nulls;

  explicit Harness(AggOp o, Type t) : op(o), type(t) {
    acc = agg_identity(op, type);
    nn = agg_identity(op, type);
    nulls = Value::of_int(0);
  }

  AccumRef ref() {
    AccumRef r;
    r.acc = &acc;
    r.nn = &nn;
    r.nulls = &nulls;
    return r;
  }

  void first(const Value& v) {
    const DeltaPayload d = synthesize_first(op, type, v);
    if (!d.noop) apply_delta(op, type, ref(), d.value, d.nulls, d.denulls);
  }

  void update(const Value& old_v, const Value& new_v) {
    const DeltaPayload d = synthesize_delta(op, type, old_v, new_v);
    if (!d.noop) apply_delta(op, type, ref(), d.value, d.nulls, d.denulls);
  }
};

Value full_fold(AggOp op, Type t, const std::vector<Value>& vals) {
  Value acc = agg_identity(op, t);
  for (const Value& v : vals) acc = agg_apply(op, t, acc, v);
  return acc;
}

// ----------------------------------------------------------- exact cases

TEST(Delta, SumBasics) {
  const auto d = synthesize_delta(AggOp::kSum, Type::kFloat,
                                  Value::of_float(0.001),
                                  Value::of_float(0.02));
  EXPECT_FALSE(d.noop);
  EXPECT_NEAR(d.value.as_f(), 0.019, 1e-12);  // the paper's §3.3 example
}

TEST(Delta, SumNoChangeIsNoop) {
  const auto d = synthesize_delta(AggOp::kSum, Type::kFloat,
                                  Value::of_float(5), Value::of_float(5));
  EXPECT_TRUE(d.noop);
}

TEST(Delta, ProdPlainRatio) {
  const auto d = synthesize_delta(AggOp::kProd, Type::kFloat,
                                  Value::of_float(4), Value::of_float(8));
  EXPECT_DOUBLE_EQ(d.value.as_f(), 2.0);
  EXPECT_EQ(d.nulls, 0);
  EXPECT_EQ(d.denulls, 0);
}

TEST(Delta, ProdIntoZeroCarriesInverse) {
  const auto d = synthesize_delta(AggOp::kProd, Type::kFloat,
                                  Value::of_float(4), Value::of_float(0));
  EXPECT_DOUBLE_EQ(d.value.as_f(), 0.25);  // removes the old factor
  EXPECT_EQ(d.nulls, 1);
}

TEST(Delta, ProdOutOfZeroCarriesFullValue) {
  const auto d = synthesize_delta(AggOp::kProd, Type::kFloat,
                                  Value::of_float(0), Value::of_float(6));
  EXPECT_DOUBLE_EQ(d.value.as_f(), 6.0);  // the paper's tag(m′)
  EXPECT_EQ(d.denulls, 1);
}

TEST(Delta, MinMaxResendFullValue) {
  const auto d = synthesize_delta(AggOp::kMin, Type::kFloat,
                                  Value::of_float(9), Value::of_float(3));
  EXPECT_DOUBLE_EQ(d.value.as_f(), 3.0);
  const auto x = synthesize_delta(AggOp::kMax, Type::kInt,
                                  Value::of_int(2), Value::of_int(7));
  EXPECT_EQ(x.value.as_i(), 7);
}

TEST(Delta, BoolTransitionsOnly) {
  // true → false for &&: entering the absorbing state.
  auto d = synthesize_delta(AggOp::kAnd, Type::kBool, Value::of_bool(true),
                            Value::of_bool(false));
  EXPECT_EQ(d.nulls, 1);
  d = synthesize_delta(AggOp::kAnd, Type::kBool, Value::of_bool(false),
                       Value::of_bool(true));
  EXPECT_EQ(d.denulls, 1);
  // No change → noop.
  d = synthesize_delta(AggOp::kOr, Type::kBool, Value::of_bool(true),
                       Value::of_bool(true));
  EXPECT_TRUE(d.noop);
}

TEST(Delta, FirstSendOfAbsorbingValueIsTagged) {
  const auto d =
      synthesize_first(AggOp::kProd, Type::kFloat, Value::of_float(0));
  EXPECT_EQ(d.nulls, 1);
  EXPECT_DOUBLE_EQ(d.value.as_f(), 1.0);  // identity payload
  const auto b =
      synthesize_first(AggOp::kAnd, Type::kBool, Value::of_bool(false));
  EXPECT_EQ(b.nulls, 1);
}

TEST(Delta, FirstSendOfIdentityIsNoop) {
  EXPECT_TRUE(synthesize_first(AggOp::kSum, Type::kFloat,
                               Value::of_float(0)).noop);
  EXPECT_TRUE(synthesize_first(AggOp::kMin, Type::kFloat,
                               agg_identity(AggOp::kMin, Type::kFloat))
                  .noop);
  EXPECT_TRUE(synthesize_first(AggOp::kAnd, Type::kBool,
                               Value::of_bool(true)).noop);
}

// --------------------------------------------- Eq. 11 over random streams

struct StreamCase {
  AggOp op;
  Type type;
  bool monotone_decreasing;  // for min (idempotent exactness condition)
  double zero_prob;          // chance a value is the absorbing element
};

class DeltaStreamTest : public ::testing::TestWithParam<StreamCase> {};

TEST_P(DeltaStreamTest, IncrementalMatchesFullRecomputation) {
  const auto& c = GetParam();
  Rng rng(0xD117A + static_cast<std::uint64_t>(c.op));
  const int senders = 8, rounds = 40;

  Harness h(c.op, c.type);
  std::vector<Value> current(senders);

  auto fresh = [&](int round, const Value* prev) -> Value {
    switch (c.type) {
      case Type::kBool: {
        const Value abs = agg_absorbing(c.op, Type::kBool);
        return rng.next_bool(c.zero_prob) ? abs
                                          : Value::of_bool(!abs.as_b());
      }
      case Type::kInt: {
        if (c.monotone_decreasing && prev)
          return Value::of_int(prev->as_i() - 1 -
                               static_cast<std::int64_t>(rng.next_below(3)));
        return Value::of_int(static_cast<std::int64_t>(rng.next_below(100)) -
                             (c.op == AggOp::kMax ? 0 : 0));
      }
      default: {
        if (c.monotone_decreasing && prev)
          return Value::of_float(prev->as_f() - rng.next_double(0.0, 2.0) -
                                 0.01);
        if (rng.next_bool(c.zero_prob)) return Value::of_float(0.0);
        return Value::of_float(rng.next_double(0.5, 4.0));
      }
    }
    (void)round;
    return Value{};
  };

  // Round 0: first sends.
  for (int s = 0; s < senders; ++s) {
    current[s] = c.monotone_decreasing
                     ? Value::of_float(rng.next_double(50.0, 100.0))
                     : fresh(0, nullptr);
    h.first(current[s]);
  }
  EXPECT_TRUE(h.acc.equals(full_fold(c.op, c.type, current)))
      << "round 0 mismatch";

  for (int round = 1; round <= rounds; ++round) {
    for (int s = 0; s < senders; ++s) {
      if (rng.next_bool(0.5)) continue;  // sender unchanged: no message
      const Value next = fresh(round, &current[s]);
      if (next.equals(current[s])) continue;  // meaningful-only policy
      h.update(current[s], next);
      current[s] = next;
    }
    const Value expect = full_fold(c.op, c.type, current);
    if (c.type == Type::kFloat) {
      EXPECT_NEAR(h.acc.as_f(), expect.as_f(),
                  1e-6 * std::max(1.0, std::abs(expect.as_f())))
          << "round " << round;
    } else {
      EXPECT_TRUE(h.acc.equals(expect))
          << "round " << round << ": got "
          << (c.type == Type::kBool ? (h.acc.as_b() ? 1.0 : 0.0)
                                    : h.acc.as_f());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Operators, DeltaStreamTest,
    ::testing::Values(
        StreamCase{AggOp::kSum, Type::kFloat, false, 0.1},
        StreamCase{AggOp::kSum, Type::kInt, false, 0.0},
        StreamCase{AggOp::kProd, Type::kFloat, false, 0.0},
        StreamCase{AggOp::kProd, Type::kFloat, false, 0.3},  // zeros!
        StreamCase{AggOp::kMin, Type::kFloat, true, 0.0},
        StreamCase{AggOp::kAnd, Type::kBool, false, 0.4},
        StreamCase{AggOp::kOr, Type::kBool, false, 0.4}));

// ----------------------------------------------------------- combiner laws

TEST(DvCombiner, CombinedDeltasFoldLikeSequentialDeltas) {
  SiteOpTable table;
  table.ops = {AggOp::kSum};
  table.types = {Type::kFloat};
  DvCombiner combiner{&table};

  DvMessage a, b;
  a.payload = Value::of_float(0.5);
  b.payload = Value::of_float(-0.2);

  // Sequential application.
  Harness h1(AggOp::kSum, Type::kFloat);
  apply_delta(AggOp::kSum, Type::kFloat, h1.ref(), a.payload, 0, 0);
  apply_delta(AggOp::kSum, Type::kFloat, h1.ref(), b.payload, 0, 0);

  // Combined application.
  DvMessage acc = a;
  combiner(acc, b);
  Harness h2(AggOp::kSum, Type::kFloat);
  apply_delta(AggOp::kSum, Type::kFloat, h2.ref(), acc.payload, acc.nulls,
              acc.denulls);

  EXPECT_NEAR(h1.acc.as_f(), h2.acc.as_f(), 1e-12);
}

TEST(DvCombiner, MultiplicativeCountersAddUnderCombining) {
  SiteOpTable table;
  table.ops = {AggOp::kProd};
  table.types = {Type::kFloat};
  DvCombiner combiner{&table};

  DvMessage to_zero;  // a sender entering zero
  to_zero.payload = Value::of_float(0.25);
  to_zero.nulls = 1;
  DvMessage from_zero;  // another sender leaving zero
  from_zero.payload = Value::of_float(6.0);
  from_zero.denulls = 1;

  DvMessage acc = to_zero;
  combiner(acc, from_zero);
  EXPECT_EQ(acc.nulls, 1);
  EXPECT_EQ(acc.denulls, 1);
  EXPECT_DOUBLE_EQ(acc.payload.as_f(), 1.5);
}

TEST(DvCombiner, KeySeparatesSites) {
  SiteOpTable table;
  table.ops = {AggOp::kSum, AggOp::kSum};
  table.types = {Type::kFloat, Type::kFloat};
  DvCombiner combiner{&table};
  DvMessage m0, m1;
  m0.site = 0;
  m1.site = 1;
  EXPECT_NE(combiner.key(7, m0), combiner.key(7, m1));
  EXPECT_NE(combiner.key(7, m0), combiner.key(8, m0));
}

TEST(DvCombiner, CommutativityAndAssociativityOverRandomMessages) {
  SiteOpTable table;
  table.ops = {AggOp::kSum, AggOp::kProd, AggOp::kMin};
  table.types = {Type::kFloat, Type::kFloat, Type::kFloat};
  DvCombiner combiner{&table};
  Rng rng(404);
  for (int site = 0; site < 3; ++site) {
    for (int trial = 0; trial < 200; ++trial) {
      DvMessage x, y, z;
      for (DvMessage* m : {&x, &y, &z}) {
        m->site = static_cast<std::uint8_t>(site);
        m->payload = Value::of_float(rng.next_double(0.1, 2.0));
        m->nulls = static_cast<std::int32_t>(rng.next_below(2));
        m->denulls = static_cast<std::int32_t>(rng.next_below(2));
      }
      // Commutativity: x⊕y == y⊕x.
      DvMessage xy = x, yx = y;
      combiner(xy, y);
      combiner(yx, x);
      EXPECT_NEAR(xy.payload.as_f(), yx.payload.as_f(), 1e-12);
      EXPECT_EQ(xy.nulls, yx.nulls);
      // Associativity: (x⊕y)⊕z == x⊕(y⊕z).
      DvMessage xy_z = xy;
      combiner(xy_z, z);
      DvMessage yz = y;
      combiner(yz, z);
      DvMessage x_yz = x;
      combiner(x_yz, yz);
      EXPECT_NEAR(xy_z.payload.as_f(), x_yz.payload.as_f(), 1e-9);
      EXPECT_EQ(xy_z.denulls, x_yz.denulls);
    }
  }
}

}  // namespace
}  // namespace deltav::dv
