#include <gtest/gtest.h>

#include <span>

#include "net/cluster_model.h"
#include "pregel/engine.h"

namespace deltav::net {
namespace {

TEST(ClusterModel, DefaultMatchesPaperDeployment) {
  ClusterModel m;
  EXPECT_EQ(m.config().machines, 8);
  EXPECT_EQ(m.config().workers_per_machine, 2);
  EXPECT_EQ(m.total_workers(), 16);
  EXPECT_DOUBLE_EQ(m.config().bandwidth_bytes_per_sec, 750e6 / 8.0);
}

TEST(ClusterModel, WorkerToMachineMapping) {
  ClusterModel m;
  EXPECT_EQ(m.machine_of_worker(0), 0);
  EXPECT_EQ(m.machine_of_worker(1), 0);
  EXPECT_EQ(m.machine_of_worker(2), 1);
  EXPECT_EQ(m.machine_of_worker(15), 7);
}

TEST(ClusterModel, CrossNetworkDetection) {
  ClusterModel m;
  EXPECT_FALSE(m.crosses_network(0, 1));  // same machine
  EXPECT_TRUE(m.crosses_network(0, 2));
  EXPECT_TRUE(m.crosses_network(3, 14));
}

TEST(ClusterModel, SuperstepTimeIsBottleneckPlusLatency) {
  ClusterConfig c;
  c.machines = 2;
  c.workers_per_machine = 1;
  c.bandwidth_bytes_per_sec = 1000.0;
  c.barrier_latency_sec = 0.5;
  ClusterModel m(c);
  // Machine 0 sends 2000 bytes, machine 1 sends 500.
  const double t = m.superstep_seconds({2000, 500}, {500, 2000});
  EXPECT_DOUBLE_EQ(t, 2000.0 / 1000.0 + 0.5);
}

TEST(ClusterModel, ZeroTrafficStillPaysBarrier) {
  ClusterConfig c;
  c.machines = 2;
  c.workers_per_machine = 1;
  c.barrier_latency_sec = 0.25;
  ClusterModel m(c);
  EXPECT_DOUBLE_EQ(m.superstep_seconds({0, 0}, {0, 0}), 0.25);
}

TEST(ClusterModel, BalancedEstimate) {
  ClusterConfig c;
  c.machines = 4;
  c.bandwidth_bytes_per_sec = 100.0;
  c.barrier_latency_sec = 0.0;
  ClusterModel m(c);
  EXPECT_DOUBLE_EQ(m.balanced_superstep_seconds(400), 1.0);
}

// End-to-end: the engine's per-superstep byte metrics, fed through the
// cluster model, must reproduce max(egress, ingress)/bandwidth + barrier
// for a hand-built two-machine traffic matrix — including a superstep
// that moves no bytes at all.
TEST(ClusterModel, EngineSimTimeMatchesHandBuiltTrafficMatrix) {
  ClusterConfig c;
  c.machines = 2;
  c.workers_per_machine = 1;
  c.bandwidth_bytes_per_sec = 1000.0;
  c.barrier_latency_sec = 0.5;

  pregel::EngineOptions opts;
  opts.num_workers = 2;
  opts.partition = pregel::PartitionScheme::kBlock;
  opts.cluster = c;
  // Block partition: vertices {0,1} live on machine 0, {2,3} on machine 1.
  pregel::Engine<int> e(4, opts);

  const std::uint64_t B = sizeof(int);
  // Superstep 0 traffic matrix (wire bytes):
  //   machine 0 -> machine 1 : 3 messages (vertex 0 -> 2)  = 3B
  //   machine 1 -> machine 0 : 1 message  (vertex 2 -> 1)  = 1B
  //   machine 0 -> machine 0 : 1 message  (vertex 1 -> 0), intra-machine,
  //                            must not touch the NIC model
  e.step([&](auto& ctx, pregel::VertexId v, std::span<const int>) {
    if (v == 0) {
      ctx.send(2, 1);
      ctx.send(2, 2);
      ctx.send(2, 3);
    }
    if (v == 1) ctx.send(0, 9);
    if (v == 2) ctx.send(1, 4);
    ctx.vote_to_halt();
  });
  // Superstep 1: deliveries only, nothing sent — the zero-traffic step.
  e.step([](auto& ctx, pregel::VertexId, std::span<const int>) {
    ctx.vote_to_halt();
  });
  ASSERT_TRUE(e.done());
  ASSERT_EQ(e.stats().num_supersteps(), 2u);

  const auto& s0 = e.stats().supersteps[0];
  EXPECT_EQ(s0.cross_machine_bytes, 4 * B);  // 3B + 1B; local traffic free
  // The engine must have fed exactly this matrix into the model.
  ClusterModel model(c);
  EXPECT_DOUBLE_EQ(s0.sim_comm_seconds,
                   model.superstep_seconds({3 * B, 1 * B}, {1 * B, 3 * B}));
  // Spelled out: the bottleneck NIC is machine 0's egress (equivalently,
  // machine 1's ingress), serialized at link bandwidth, plus one barrier.
  EXPECT_DOUBLE_EQ(
      s0.sim_comm_seconds,
      3.0 * static_cast<double>(B) / c.bandwidth_bytes_per_sec +
          c.barrier_latency_sec);

  const auto& s1 = e.stats().supersteps[1];
  EXPECT_EQ(s1.cross_machine_bytes, 0u);
  EXPECT_DOUBLE_EQ(s1.sim_comm_seconds, c.barrier_latency_sec);
}

TEST(ClusterModel, MismatchedVectorSizesThrow) {
  ClusterModel m;
  EXPECT_THROW(m.superstep_seconds({1, 2}, {1, 2, 3, 4, 5, 6, 7, 8}),
               CheckError);
}

TEST(ClusterModel, InvalidConfigRejected) {
  ClusterConfig c;
  c.machines = 0;
  EXPECT_THROW(ClusterModel{c}, CheckError);
  ClusterConfig c2;
  c2.bandwidth_bytes_per_sec = 0;
  EXPECT_THROW(ClusterModel{c2}, CheckError);
}

}  // namespace
}  // namespace deltav::net
