#include <gtest/gtest.h>

#include "net/cluster_model.h"

namespace deltav::net {
namespace {

TEST(ClusterModel, DefaultMatchesPaperDeployment) {
  ClusterModel m;
  EXPECT_EQ(m.config().machines, 8);
  EXPECT_EQ(m.config().workers_per_machine, 2);
  EXPECT_EQ(m.total_workers(), 16);
  EXPECT_DOUBLE_EQ(m.config().bandwidth_bytes_per_sec, 750e6 / 8.0);
}

TEST(ClusterModel, WorkerToMachineMapping) {
  ClusterModel m;
  EXPECT_EQ(m.machine_of_worker(0), 0);
  EXPECT_EQ(m.machine_of_worker(1), 0);
  EXPECT_EQ(m.machine_of_worker(2), 1);
  EXPECT_EQ(m.machine_of_worker(15), 7);
}

TEST(ClusterModel, CrossNetworkDetection) {
  ClusterModel m;
  EXPECT_FALSE(m.crosses_network(0, 1));  // same machine
  EXPECT_TRUE(m.crosses_network(0, 2));
  EXPECT_TRUE(m.crosses_network(3, 14));
}

TEST(ClusterModel, SuperstepTimeIsBottleneckPlusLatency) {
  ClusterConfig c;
  c.machines = 2;
  c.workers_per_machine = 1;
  c.bandwidth_bytes_per_sec = 1000.0;
  c.barrier_latency_sec = 0.5;
  ClusterModel m(c);
  // Machine 0 sends 2000 bytes, machine 1 sends 500.
  const double t = m.superstep_seconds({2000, 500}, {500, 2000});
  EXPECT_DOUBLE_EQ(t, 2000.0 / 1000.0 + 0.5);
}

TEST(ClusterModel, ZeroTrafficStillPaysBarrier) {
  ClusterConfig c;
  c.machines = 2;
  c.workers_per_machine = 1;
  c.barrier_latency_sec = 0.25;
  ClusterModel m(c);
  EXPECT_DOUBLE_EQ(m.superstep_seconds({0, 0}, {0, 0}), 0.25);
}

TEST(ClusterModel, BalancedEstimate) {
  ClusterConfig c;
  c.machines = 4;
  c.bandwidth_bytes_per_sec = 100.0;
  c.barrier_latency_sec = 0.0;
  ClusterModel m(c);
  EXPECT_DOUBLE_EQ(m.balanced_superstep_seconds(400), 1.0);
}

TEST(ClusterModel, MismatchedVectorSizesThrow) {
  ClusterModel m;
  EXPECT_THROW(m.superstep_seconds({1, 2}, {1, 2, 3, 4, 5, 6, 7, 8}),
               CheckError);
}

TEST(ClusterModel, InvalidConfigRejected) {
  ClusterConfig c;
  c.machines = 0;
  EXPECT_THROW(ClusterModel{c}, CheckError);
  ClusterConfig c2;
  c2.bandwidth_bytes_per_sec = 0;
  EXPECT_THROW(ClusterModel{c2}, CheckError);
}

}  // namespace
}  // namespace deltav::net
