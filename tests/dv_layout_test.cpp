// Vertex-state layout accounting — the substance behind Table 2.
#include <gtest/gtest.h>

#include "dv/compiler.h"
#include "dv/programs/programs.h"
#include "dv/runtime/layout.h"

namespace deltav::dv {
namespace {

CompiledProgram dv_full(const char* src) { return compile(src, {}); }
CompiledProgram dv_star(const char* src) {
  return compile(src, CompileOptions{.incrementalize = false});
}

TEST(Layout, PageRankStarIsTwoFloats) {
  const auto cp = dv_star(programs::kPageRank);
  EXPECT_EQ(cp.layout.user_bytes, 16u);  // vl + pr
  EXPECT_EQ(cp.layout.accumulator_bytes, 0u);
  EXPECT_EQ(cp.state_bytes(), 16u);
}

TEST(Layout, PageRankFullAddsOneAccumulator) {
  const auto cp = dv_full(programs::kPageRank);
  EXPECT_EQ(cp.layout.user_bytes, 16u);
  EXPECT_EQ(cp.layout.accumulator_bytes, 8u);  // one + site
  EXPECT_EQ(cp.state_bytes(), 24u);
}

TEST(Layout, SsspAddsOneAccumulator) {
  const auto star = dv_star(programs::kSssp);
  const auto full = dv_full(programs::kSssp);
  EXPECT_EQ(star.state_bytes(), 8u);   // dist
  EXPECT_EQ(full.state_bytes(), 16u);  // dist + min-accumulator
}

TEST(Layout, HitsAddsTwoAccumulators) {
  const auto star = dv_star(programs::kHits);
  const auto full = dv_full(programs::kHits);
  EXPECT_EQ(star.state_bytes(), 16u);  // hub + auth
  EXPECT_EQ(full.state_bytes(), 32u);  // + two sum accumulators
}

TEST(Layout, MultiplicativeSiteAddsTriple) {
  const char* prod_src =
      "init { local a : float = 2.0 };"
      "iter i { a = * [ u.a | u <- #in ] } until { i >= 2 }";
  const auto star = dv_star(prod_src);
  const auto full = dv_full(prod_src);
  EXPECT_EQ(star.state_bytes(), 8u);
  // aggAccum + nnAcc + aggNulls = 24 extra bytes (§6.4.1).
  EXPECT_EQ(full.layout.accumulator_bytes, 8u);
  EXPECT_EQ(full.layout.multiplicative_bytes, 16u);
  EXPECT_EQ(full.state_bytes(), 32u);
}

TEST(Layout, BoolFieldsBytePack) {
  const auto cp = dv_star(
      "init { local a : bool = true; local b : bool = false;"
      "       local x : float = 0.0 };"
      "step { x = 1.0 }");
  // 8 (float) + 2×1 (bools) → aligned to 16.
  EXPECT_EQ(cp.state_bytes(), 16u);
}

TEST(Layout, SentBindingCountsSeparately) {
  const auto cp = dv_full(
      "init { local a : float = 1.0; local b : float = 0.0 };"
      "iter i { b = + [ u.a * 2.0 | u <- #in ]; a = b } until { i >= 2 }");
  EXPECT_EQ(cp.layout.binding_bytes, 8u);  // the §6.2 freshVar
}

TEST(Layout, EpsilonModeAddsLastSentField) {
  CompileOptions o;
  o.epsilon = 0.01;
  const auto cp = compile(programs::kPageRank, o);
  EXPECT_EQ(cp.layout.epsilon_bytes, 8u);
  EXPECT_EQ(cp.state_bytes(), 32u);  // 16 user + 8 acc + 8 last-sent
}

TEST(Layout, TableTwoOrderingHolds) {
  // The paper's Table-2 shape: Pregel+ (raw fields) < ΔV* ≤ ΔV, with ΔV's
  // overhead small (≤ 8 bytes per aggregation site for non-multiplicative
  // programs).
  struct Row {
    const char* src;
    std::size_t sites;
  };
  for (const Row& row : {Row{programs::kPageRank, 1},
                         Row{programs::kSssp, 1},
                         Row{programs::kConnectedComponents, 1},
                         Row{programs::kHits, 2}}) {
    const auto star = dv_star(row.src);
    const auto full = dv_full(row.src);
    EXPECT_LE(star.state_bytes(), full.state_bytes());
    EXPECT_EQ(full.state_bytes() - star.state_bytes(), 8u * row.sites);
  }
}

TEST(Layout, SummaryMentionsBreakdown) {
  const auto cp = dv_full(programs::kPageRank);
  const auto s = cp.layout.summary();
  EXPECT_NE(s.find("24 B"), std::string::npos);
  EXPECT_NE(s.find("accumulators 8"), std::string::npos);
}

TEST(Layout, EmptyStateStillOneWord) {
  Program p;
  EXPECT_EQ(StateLayout::of(p).total_bytes, 8u);
}

}  // namespace
}  // namespace deltav::dv
