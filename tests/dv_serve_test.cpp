// dv_serve: session hosts, the registry, epoch coalescing, recovery and
// the line protocol.
//
// The load-bearing claims under test:
//   - group commit is value-neutral: any concurrent interleaving of
//     writer enqueues converges to exactly the state of applying one
//     merged batch (the stream fuzz tier's partition-invariance, made
//     load-bearing by the serving layer);
//   - reads come from the last committed epoch and never wait on the
//     epoch in flight (a paused engine cannot block a reader);
//   - backpressure, not unbounded queueing: enqueue blocks at
//     queue_limit until the engine drains;
//   - recovery: epoch-boundary checkpoints restore to a value-identical
//     serving host after kill(), which then keeps serving epochs;
//   - the protocol state machine maps every failure to a one-line ERR
//     without taking the connection or other tenants down.
//
// Tier coverage: vm and tree run here (the equivalence tests iterate
// both). The native tier's AOT pipeline shells out to the host compiler
// and is exercised by dv_native_test (codegen label) — the serve label
// runs under TSan, where generated code cannot link instrumented.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "dv/persist/snapshot.h"
#include "dv/programs/programs.h"
#include "dv/serve/protocol.h"
#include "dv/serve/read_view.h"
#include "dv/serve/registry.h"
#include "dv/serve/session_host.h"
#include "dv/streaming/mutation_io.h"
#include "dv/streaming/stream_session.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "test_util.h"

namespace deltav {
namespace {

using dv::serve::CreateSpec;
using dv::serve::HostOptions;
using dv::serve::HostStats;
using dv::serve::merge_batches;
using dv::serve::Registry;
using dv::serve::ServeCore;
using dv::serve::SessionHost;
using dv::streaming::BatchLineParser;
using graph::MutationBatch;
using test::compile_dv;
using test::small_engine;

HostOptions host_opts(dv::ExecTier tier = dv::ExecTier::kVm) {
  HostOptions o;
  o.session.run.engine = small_engine();
  o.session.run.tier = tier;
  return o;
}

/// 8-vertex undirected double-triangle + isolated pair: two components
/// {0,1,2,3} and {4,5}, vertices 6 and 7 isolated. cc converges to the
/// component-minimum id.
graph::CsrGraph two_components() {
  graph::GraphBuilder b(8, /*directed=*/false);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  b.add_edge(4, 5);
  return b.build();
}

/// Cold oracle for a host: run cc from scratch over `base` + the merged
/// mutations through a plain single-threaded session.
dv::DvRunResult offline_cc(const dv::CompiledProgram& cp,
                           const graph::CsrGraph& base,
                           const std::vector<MutationBatch>& batches,
                           dv::ExecTier tier = dv::ExecTier::kVm) {
  dv::streaming::SessionOptions so;
  so.run.engine = small_engine();
  so.run.tier = tier;
  auto s = dv::streaming::make_stream_session(cp, base, so);
  s->converge();
  if (!batches.empty()) s->apply(merge_batches(batches));
  return s->result();
}

void expect_comp_matches(const SessionHost& host,
                         const dv::DvRunResult& want) {
  const auto snap = host.view();
  const int slot = want.field_slot("comp");
  ASSERT_EQ(snap->result.num_vertices, want.num_vertices);
  for (graph::VertexId v = 0;
       v < static_cast<graph::VertexId>(want.num_vertices); ++v) {
    EXPECT_EQ(snap->result.at(v, slot).as_i(), want.at(v, slot).as_i())
        << "vertex " << v;
  }
}

// ------------------------------------------------------------ merging

TEST(MergeBatches, ConcatenatesInOrder) {
  MutationBatch a;
  a.insert_edge(0, 1, 2.0);
  a.add_vertices = 2;
  MutationBatch b;
  b.remove_edge(0, 1);
  b.detach_vertices.push_back(3);
  b.add_vertices = 1;
  const MutationBatch m = merge_batches({a, b});
  ASSERT_EQ(m.edges.size(), 2u);
  // Order is the correctness property: MutationBatch is last-write-wins,
  // so the delete admitted after the insert must stay after it.
  EXPECT_TRUE(m.edges[0].insert);
  EXPECT_FALSE(m.edges[1].insert);
  EXPECT_EQ(m.add_vertices, 3u);
  ASSERT_EQ(m.detach_vertices.size(), 1u);
  EXPECT_EQ(m.detach_vertices[0], 3);
}

TEST(MergeBatches, OpsCountsLineItems) {
  MutationBatch b;
  b.insert_edge(0, 1);
  b.remove_edge(1, 2);
  b.add_vertices = 4;  // one `addv 4` line item, not four
  b.detach_vertices.push_back(0);
  EXPECT_EQ(dv::serve::batch_ops(b), 4u);
}

// ----------------------------------------------------------- host core

TEST(SessionHost, ServesInitialConvergence) {
  const auto cp = compile_dv(dv::programs::kConnectedComponents);
  SessionHost host("t", compile_dv(dv::programs::kConnectedComponents),
                   two_components(), host_opts());
  host.wait_ready();
  expect_comp_matches(host, offline_cc(cp, two_components(), {}));
  EXPECT_EQ(host.get(3, "comp").as_i(), 0);
  EXPECT_EQ(host.get(5, "comp").as_i(), 4);
  const HostStats s = host.stats();
  EXPECT_TRUE(s.ready);
  EXPECT_EQ(s.epochs_committed, 0u);
  EXPECT_EQ(s.vertices, 8u);
  EXPECT_EQ(s.reads, 2u);
}

TEST(SessionHost, PauseMakesCoalescingDeterministic) {
  const auto cp = compile_dv(dv::programs::kConnectedComponents);
  SessionHost host("t", compile_dv(dv::programs::kConnectedComponents),
                   two_components(), host_opts());
  host.wait_ready();
  host.pause();
  std::vector<MutationBatch> batches;
  for (int k = 0; k < 5; ++k) {
    MutationBatch b;
    b.insert_edge(static_cast<graph::VertexId>(k),
                  static_cast<graph::VertexId>(k) + 3);
    batches.push_back(b);
    host.enqueue(b);
  }
  host.resume();
  host.flush();
  // All five batches were queued against a paused engine, so they commit
  // as exactly one group-commit epoch...
  const HostStats s = host.stats();
  EXPECT_EQ(s.epochs_committed, 1u);
  EXPECT_EQ(s.batches_admitted, 5u);
  EXPECT_EQ(s.max_coalesced, 5u);
  EXPECT_EQ(s.batches_coalesced, 4u);
  EXPECT_EQ(s.mutations_admitted, 5u);
  // ...whose state equals the one-batch cold oracle (chained inserts
  // merge everything into one component).
  expect_comp_matches(host, offline_cc(cp, two_components(), batches));
  EXPECT_EQ(host.get(7, "comp").as_i(), 0);
}

TEST(SessionHost, ConcurrentWritersMatchOneBatchOracle) {
  for (const auto tier : {dv::ExecTier::kVm, dv::ExecTier::kTree}) {
    SCOPED_TRACE(dv::exec_tier_name(tier));
    const auto cp = compile_dv(dv::programs::kConnectedComponents);
    const graph::CsrGraph base =
        graph::rmat(128, 256, test::effective_seed(11),
                    [] { graph::RmatOptions o; o.directed = false; return o; }());
    SessionHost host("t", compile_dv(dv::programs::kConnectedComponents),
                     base, host_opts(tier));
    host.wait_ready();

    // Four writers, disjoint insert-only edge sets (insert-only keeps the
    // merged result independent of the interleaving order, so a single
    // oracle covers every admissible schedule).
    constexpr int kWriters = 4, kBatchesPerWriter = 8;
    std::vector<std::vector<MutationBatch>> streams(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      Rng rng(test::effective_seed(100 + static_cast<std::uint64_t>(w)));
      for (int k = 0; k < kBatchesPerWriter; ++k) {
        MutationBatch b;
        const auto u = static_cast<graph::VertexId>(
            w * 32 + static_cast<int>(rng.next_below(32)));
        const auto v =
            static_cast<graph::VertexId>(rng.next_below(128));
        if (u != v) b.insert_edge(u, v);
        if (!b.empty()) streams[static_cast<std::size_t>(w)].push_back(b);
      }
    }
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&host, &streams, w] {
        for (const MutationBatch& b :
             streams[static_cast<std::size_t>(w)]) {
          host.enqueue(b);
        }
      });
    }
    for (std::thread& t : writers) t.join();
    host.flush();

    std::vector<MutationBatch> all;
    for (const auto& s : streams) all.insert(all.end(), s.begin(), s.end());
    expect_comp_matches(host, offline_cc(cp, base, all, tier));
    const HostStats s = host.stats();
    EXPECT_EQ(s.batches_admitted, all.size());
    EXPECT_GE(s.epochs_committed, 1u);
    EXPECT_LE(s.epochs_committed, all.size());
  }
}

TEST(SessionHost, ReadsServeCommittedStateWhileEngineIsBusy) {
  SessionHost host("t", compile_dv(dv::programs::kConnectedComponents),
                   two_components(), host_opts());
  host.wait_ready();
  host.pause();
  MutationBatch b;
  b.insert_edge(3, 4);
  host.enqueue(b);
  // The batch is admitted but cannot commit (engine paused): reads must
  // return the previous epoch instantly instead of waiting for it.
  EXPECT_EQ(host.view()->epoch, 0u);
  EXPECT_EQ(host.get(4, "comp").as_i(), 4);
  const auto top = host.topk("comp", 3);
  ASSERT_EQ(top.size(), 3u);
  // Descending by value, ties broken toward the lower id.
  EXPECT_EQ(top[0].first, 7);
  EXPECT_EQ(top[0].second, 7.0);
  EXPECT_EQ(top[1].first, 6);
  EXPECT_EQ(top[2].first, 4);
  host.resume();
  host.flush();
  EXPECT_EQ(host.view()->epoch, 1u);
  EXPECT_EQ(host.get(4, "comp").as_i(), 0);
}

TEST(SessionHost, EnqueueBlocksAtQueueLimit) {
  HostOptions o = host_opts();
  o.queue_limit = 2;
  SessionHost host("t", compile_dv(dv::programs::kConnectedComponents),
                   two_components(), o);
  host.wait_ready();
  host.pause();
  MutationBatch b;
  b.insert_edge(3, 4);
  host.enqueue(b);
  host.enqueue(b);  // queue now at limit; the engine is paused
  std::atomic<bool> admitted{false};
  std::thread writer([&] {
    host.enqueue(b);  // must block until resume() lets the engine drain
    admitted.store(true);
  });
  // Deterministic, not a race: a paused engine never drains, so the only
  // way `admitted` could flip here is backpressure failing to engage.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());
  host.resume();
  writer.join();
  EXPECT_TRUE(admitted.load());
  host.flush();
  EXPECT_EQ(host.stats().batches_admitted, 3u);
}

TEST(SessionHost, EngineFailureSurfacesEverywhere) {
  SessionHost host("t", compile_dv(dv::programs::kConnectedComponents),
                   two_components(), host_opts());
  host.wait_ready();
  MutationBatch bad;
  bad.insert_edge(0, 9999);  // beyond the id tail: apply() throws
  host.enqueue(bad);
  EXPECT_THROW(host.flush(), CheckError);
  const HostStats s = host.stats();
  EXPECT_TRUE(s.failed);
  EXPECT_FALSE(s.error.empty());
  MutationBatch ok;
  ok.insert_edge(0, 1);
  EXPECT_THROW(host.enqueue(ok), CheckError);
}

TEST(SessionHost, SnapshotBytesRestoresEquivalentHost) {
  const auto cp = compile_dv(dv::programs::kConnectedComponents);
  SessionHost host("t", compile_dv(dv::programs::kConnectedComponents),
                   two_components(), host_opts());
  MutationBatch b;
  b.insert_edge(3, 4);
  host.enqueue(b);
  host.flush();
  std::vector<std::uint8_t> bytes = host.snapshot_bytes();
  ASSERT_FALSE(bytes.empty());
  SessionHost restored("t2",
                       compile_dv(dv::programs::kConnectedComponents),
                       std::move(bytes), host_opts());
  restored.wait_ready();
  expect_comp_matches(restored, offline_cc(cp, two_components(), {b}));
  EXPECT_EQ(restored.view()->epoch, host.view()->epoch);
}

TEST(SessionHost, RecoveryAfterKillContinuesServing) {
  const std::string ckpt = "dv_serve_test_recovery.snap";
  const auto cp = compile_dv(dv::programs::kConnectedComponents);
  MutationBatch b1, b2;
  b1.insert_edge(3, 4);
  b2.insert_edge(5, 6);
  {
    HostOptions o = host_opts();
    o.checkpoint_every = 1;
    o.checkpoint_path = ckpt;
    SessionHost host("t", compile_dv(dv::programs::kConnectedComponents),
                     two_components(), o);
    host.enqueue(b1);
    host.flush();
    EXPECT_EQ(host.stats().checkpoints, 1u);
    host.kill();
    // A killed host refuses work instead of serving stale state silently.
    EXPECT_THROW(host.enqueue(b2), CheckError);
  }
  SessionHost restored("t", compile_dv(dv::programs::kConnectedComponents),
                       dv::persist::read_file_bytes(ckpt), host_opts());
  restored.wait_ready();
  expect_comp_matches(restored, offline_cc(cp, two_components(), {b1}));
  // The restored host is a full serving host, not a read-only replica:
  // it keeps committing warm epochs.
  restored.enqueue(b2);
  restored.flush();
  expect_comp_matches(restored, offline_cc(cp, two_components(), {b1, b2}));
  std::remove(ckpt.c_str());
}

// ------------------------------------------------------------ registry

TEST(Registry, CreateFindClose) {
  Registry reg;
  CreateSpec spec;
  spec.name = "pr";
  spec.program = "cc";
  spec.graph = "rmat:5x2";
  spec.undirected = true;
  spec.host = host_opts();
  auto host = reg.create(spec);
  ASSERT_NE(host, nullptr);
  EXPECT_EQ(reg.find("pr"), host);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_THROW(reg.create(spec), CheckError);  // name taken
  host->wait_ready();
  EXPECT_EQ(host->stats().vertices, 32u);
  EXPECT_TRUE(reg.close("pr"));
  EXPECT_EQ(reg.find("pr"), nullptr);
  EXPECT_FALSE(reg.close("pr"));
  // Our reference keeps the closed host alive and serving until dropped.
  EXPECT_EQ(host->stats().vertices, 32u);
}

TEST(Registry, UnknownProgramAndGraphSpecErrors) {
  Registry reg;
  CreateSpec spec;
  spec.name = "x";
  spec.program = "no-such-program";
  spec.graph = "rmat:4x2";
  EXPECT_THROW(reg.create(spec), CheckError);
  spec.program = "cc";
  spec.graph = "rmat:nope";
  EXPECT_THROW(reg.create(spec), CheckError);
}

TEST(Registry, RestoreFallsBackToColdBuild) {
  Registry reg;
  CreateSpec spec;
  spec.name = "x";
  spec.program = "cc";
  spec.graph = "rmat:4x2";
  spec.undirected = true;
  spec.host = host_opts();
  spec.restore_from = "dv_serve_test_damaged.snap";
  std::ofstream(spec.restore_from) << "not a snapshot";
  auto host = reg.create(spec);  // damaged restore degrades, not refuses
  host->wait_ready();
  EXPECT_EQ(host->stats().vertices, 16u);
  std::remove(spec.restore_from.c_str());
}

// ------------------------------------------------------------ protocol

/// Drives one line, expecting the response to start with `prefix`.
std::string expect_line(ServeCore& core, dv::serve::Conn& conn,
                        const std::string& line,
                        const std::string& prefix) {
  const std::string resp = core.handle_line(conn, line);
  EXPECT_EQ(resp.rfind(prefix, 0), 0u)
      << "request '" << line << "' answered '" << resp << "'";
  return resp;
}

TEST(Protocol, CreateMutateReadClose) {
  ServeCore core(host_opts());
  dv::serve::Conn conn;
  expect_line(core, conn, "PING", "OK pong");
  // Protocol graphs come from specs; give CREATE a real edge list too.
  // Ids are contiguous on purpose: the edge-list reader densifies sparse
  // ids, which would silently renumber the vertices GET names.
  const std::string edges = "dv_serve_test_edges.txt";
  std::ofstream(edges) << "0 1\n1 2\n3 4\n";
  expect_line(core, conn,
              "CREATE cc1 cc " + edges + " undirected queue_limit=4",
              "OK created cc1");
  expect_line(core, conn, "CREATE cc1 cc " + edges, "ERR ");
  expect_line(core, conn, "MUT cc1", "");
  EXPECT_TRUE(conn.in_mut);
  // Satellite: comments and blank lines inside a MUT body are skipped.
  EXPECT_EQ(core.handle_line(conn, "# join the two components"), "");
  EXPECT_EQ(core.handle_line(conn, ""), "");
  EXPECT_EQ(core.handle_line(conn, "+ 2 3"), "");
  expect_line(core, conn, "commit", "OK queued ops=1");
  EXPECT_FALSE(conn.in_mut);
  expect_line(core, conn, "FLUSH cc1", "OK epoch=1");
  expect_line(core, conn, "GET cc1 4 comp", "OK 0");
  expect_line(core, conn, "TOPK cc1 comp 2", "OK 2 0:0 1:0");
  const std::string stats = expect_line(core, conn, "STATS", "OK {");
  EXPECT_NE(stats.find("\"sessions\""), std::string::npos);
  EXPECT_NE(stats.find("\"cc1\""), std::string::npos);
  expect_line(core, conn, "SNAPSHOT cc1 dv_serve_test_proto.snap",
              "OK bytes=");
  expect_line(core, conn, "CLOSE cc1", "OK closed cc1");
  expect_line(core, conn, "GET cc1 0 comp", "ERR ");
  std::remove(edges.c_str());
  std::remove("dv_serve_test_proto.snap");
}

TEST(Protocol, ErrorsAreOneLineAndIsolated) {
  ServeCore core(host_opts());
  dv::serve::Conn conn;
  bool quit = false;
  expect_line(core, conn, "BOGUS", "ERR ");
  expect_line(core, conn, "GET nope 0 comp", "ERR ");
  expect_line(core, conn, "MUT nope", "ERR ");
  expect_line(core, conn, "CREATE a cc rmat:4x2 undirected", "OK created a");
  expect_line(core, conn, "MUT a", "");
  // A malformed op aborts the whole batch and resets MUT state: the next
  // line is parsed as a fresh request, and nothing was admitted.
  expect_line(core, conn, "+ 1", "ERR ");
  EXPECT_FALSE(conn.in_mut);
  expect_line(core, conn, "FLUSH a", "OK epoch=0");
  EXPECT_EQ(core.handle_line(conn, "QUIT", &quit), "OK bye");
  EXPECT_TRUE(quit);
  // One tenant's failure must not leak into another: break session a
  // with an out-of-range insert, then create and serve b normally.
  dv::serve::Conn c2;
  expect_line(core, c2, "MUT a", "");
  core.handle_line(c2, "+ 0 99999");
  expect_line(core, c2, "commit", "OK queued ops=1");
  expect_line(core, c2, "FLUSH a", "ERR ");
  expect_line(core, c2, "CREATE b cc rmat:4x2 undirected", "OK created b");
  expect_line(core, c2, "FLUSH b", "OK epoch=0");
}

// ----------------------------------------------------- mutation parsing

TEST(BatchLineParser, SkipsCommentsAndBlankLines) {
  BatchLineParser p;
  EXPECT_FALSE(p.feed("# header comment"));
  EXPECT_FALSE(p.feed(""));
  EXPECT_FALSE(p.feed("% alternate comment style"));
  EXPECT_FALSE(p.feed("+ 1 2 2.5"));
  EXPECT_FALSE(p.feed("   "));  // whitespace-only is blank
  EXPECT_FALSE(p.feed("- 3 4"));
  EXPECT_FALSE(p.feed("addv 2"));
  EXPECT_FALSE(p.feed("delv 0"));
  EXPECT_TRUE(p.feed("commit"));
  const MutationBatch b = p.take();
  ASSERT_EQ(b.edges.size(), 2u);
  EXPECT_TRUE(b.edges[0].insert);
  EXPECT_EQ(b.edges[0].weight, 2.5);
  EXPECT_EQ(b.add_vertices, 2u);
  ASSERT_EQ(b.detach_vertices.size(), 1u);
  EXPECT_EQ(p.lines_fed(), 9u);
  // take() reset the parser for the connection's next MUT.
  EXPECT_TRUE(p.batch().empty());
}

TEST(BatchLineParser, MalformedLineNamesItsNumber) {
  BatchLineParser p;
  EXPECT_FALSE(p.feed("# comment"));
  try {
    p.feed("+ 1");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(MutationStreamFile, BlankLineStillSeparatesBatches) {
  // The file format is unchanged by the protocol parser's skip rule: in
  // files a blank line ends the current batch (two here), while comments
  // are skipped in both surfaces.
  std::istringstream in("# stream\n+ 0 1\n\n+ 2 3\n+ 4 5\ncommit\n");
  const auto batches = dv::streaming::read_mutation_stream(in);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].edges.size(), 1u);
  EXPECT_EQ(batches[1].edges.size(), 2u);
}

// ------------------------------------------------------------- topk

TEST(ReadView, TopkOrdersAndClamps) {
  SessionHost host("t", compile_dv(dv::programs::kConnectedComponents),
                   two_components(), host_opts());
  host.wait_ready();
  const auto all = host.topk("comp", 100);  // k beyond n clamps to n
  ASSERT_EQ(all.size(), 8u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    const bool ordered =
        all[i - 1].second > all[i].second ||
        (all[i - 1].second == all[i].second &&
         all[i - 1].first < all[i].first);
    EXPECT_TRUE(ordered) << "rank " << i;
  }
  // Component minima: {0,1,2,3}→0, {4,5}→4, isolated 6,7 stay themselves.
  EXPECT_EQ(all[0].first, 7);
  EXPECT_EQ(all[1].first, 6);
  EXPECT_EQ(all[2].first, 4);
  EXPECT_EQ(all[3].first, 5);
}

}  // namespace
}  // namespace deltav
