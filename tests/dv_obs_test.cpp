// Unit tests for the observability subsystem (DESIGN.md §8): metrics
// registry sharding and snapshots, the span tracer rings, RAII scopes,
// global collector install/resolve, and the JSON sinks.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "dv/obs/obs.h"
#include "dv/obs/report.h"
#include "dv/obs/trace_export.h"

namespace deltav::obs {
namespace {

TEST(Metrics, CounterNamesAreTheStableCatalogue) {
  // These names are the public schema (CI greps them); renames break it.
  EXPECT_STREQ(counter_name(Counter::kSendsSuppressed),
               "dv.sends_suppressed");
  EXPECT_STREQ(counter_name(Counter::kDeltaMessages), "dv.delta_messages");
  EXPECT_STREQ(counter_name(Counter::kMemoHits), "dv.memo_hits");
  EXPECT_STREQ(counter_name(Counter::kVerticesHalted),
               "pregel.vertices_halted");
  EXPECT_STREQ(counter_name(Counter::kWarmEpochs), "stream.warm_epochs");
  EXPECT_STREQ(counter_name(Counter::kVmOpsDispatched),
               "vm.ops_dispatched");
  // Every enum value must map to a non-empty dotted name.
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const char* name = counter_name(static_cast<Counter>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_NE(std::string(name).find('.'), std::string::npos) << name;
  }
}

TEST(Metrics, SnapshotAggregatesAcrossLanes) {
  MetricsRegistry reg(4);
  reg.shard(0).add(Counter::kMemoHits, 3);
  reg.shard(1).add(Counter::kMemoHits, 4);
  reg.shard(3).add(Counter::kMemoHits);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("dv.memo_hits"), 8u);
  // Untouched series still read as 0, not as absent.
  ASSERT_TRUE(snap.counters.contains("dv.memo_recomputes"));
  EXPECT_EQ(snap.counter("dv.memo_recomputes"), 0u);
  // Unknown names read as 0 through the helper.
  EXPECT_EQ(snap.counter("no.such.series"), 0u);
}

TEST(Metrics, OutOfRangeLaneAliasesLaneZero) {
  MetricsRegistry reg(2);
  reg.shard(99).add(Counter::kSupersteps, 5);
  EXPECT_EQ(reg.shard(0).counts[static_cast<std::size_t>(
                Counter::kSupersteps)],
            5u);
}

TEST(Metrics, NamedGaugeAndHistogramSeries) {
  MetricsRegistry reg(1);
  reg.add_named("stream.warm_blocked.program changed", 2);
  reg.add_named("stream.warm_blocked.program changed");
  reg.set_gauge("dv.frontier_size", 17.0);
  reg.set_gauge("dv.frontier_size", 12.0);  // last write wins
  reg.observe("persist.crc_seconds", 0.25);
  reg.observe("persist.crc_seconds", 0.75);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("stream.warm_blocked.program changed"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("dv.frontier_size"), 12.0);
  const auto& h = snap.histograms.at("persist.crc_seconds");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.sum, 1.0);
  EXPECT_DOUBLE_EQ(h.min, 0.25);
  EXPECT_DOUBLE_EQ(h.max, 0.75);
}

TEST(Metrics, CounterDiffIsPerEpochIncrementsClampedAtZero) {
  MetricsRegistry reg(1);
  reg.shard(0).add(Counter::kDeltaMessages, 10);
  const auto before = reg.snapshot();
  reg.shard(0).add(Counter::kDeltaMessages, 7);
  reg.add_named("stream.warm_blocked.x");
  const auto diff = counter_diff(before, reg.snapshot());
  EXPECT_EQ(diff.at("dv.delta_messages"), 7u);
  EXPECT_EQ(diff.at("stream.warm_blocked.x"), 1u);
  // A series that only exists in `before` clamps to 0 rather than wrapping.
  MetricsRegistry::Snapshot b2, a2;
  b2.counters["gone"] = 5;
  EXPECT_EQ(counter_diff(b2, a2).count("gone"), 0u);
}

TEST(Trace, RingKeepsNewestEventsAndCountsDrops) {
  Tracer t(/*lanes=*/1, /*events_per_lane=*/4);
  for (int i = 0; i < 6; ++i)
    t.record(0, "span", static_cast<std::uint64_t>(i * 10), 5);
  const auto events = t.events(0);
  ASSERT_EQ(events.size(), 4u);
  // Oldest first: events 2..5 survive, 0 and 1 fell off.
  EXPECT_EQ(events.front().start_us, 20u);
  EXPECT_EQ(events.back().start_us, 50u);
  EXPECT_EQ(t.dropped(0), 2u);
}

TEST(Trace, ScopeRecordsClosedIntervalOnItsLane) {
  Collector col(2);
  {
    Scope s(&col, "outer", /*lane=*/1);
    Scope inner(&col, "inner", /*lane=*/1);
  }
  const auto events = col.trace.events(1);
  ASSERT_EQ(events.size(), 2u);
  // Scopes close innermost-first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_LE(events[0].start_us + events[0].dur_us,
            events[1].start_us + events[1].dur_us +
                1);  // containment up to µs rounding
  EXPECT_TRUE(col.trace.events(0).empty());
}

TEST(Trace, NullCollectorScopeIsANoOp) {
  ASSERT_EQ(current(), nullptr);
  Scope s(nullptr, "nothing");
  Scope g("also nothing");  // global form against no installed collector
  MetricsShard* shard = nullptr;
  DV_OBS_COUNT(shard, kSendsSuppressed, 10);  // must not crash
}

TEST(Obs, InstallResolveUninstall) {
  ASSERT_EQ(current(), nullptr);
  Collector col(1);
  Collector* prev = install(&col);
  EXPECT_EQ(prev, nullptr);
  EXPECT_EQ(current(), &col);
  EXPECT_EQ(resolve(nullptr), &col);
  Collector local(1);
  EXPECT_EQ(resolve(&local), &local);  // explicit wins over global
  install(nullptr);
  EXPECT_EQ(current(), nullptr);
  EXPECT_EQ(resolve(nullptr), nullptr);
}

TEST(Report, MetricsJsonShape) {
  MetricsRegistry reg(1);
  reg.shard(0).add(Counter::kSendsSuppressed, 42);
  reg.set_gauge("dv.frontier_size", 3.0);
  reg.observe("persist.crc_seconds", 0.5);
  EpochMetrics em;
  em.epoch = 2;
  em.warm = false;
  em.blocker = "program changed";
  em.counters["dv.delta_messages"] = 9;
  std::ostringstream os;
  write_metrics_json(reg.snapshot(), {em}, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"dv.sends_suppressed\":42"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"persist.crc_seconds\":{\"count\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"epochs\""), std::string::npos);
  EXPECT_NE(json.find("\"warm\":false"), std::string::npos);
  EXPECT_NE(json.find("\"blocker\":\"program changed\""),
            std::string::npos);
  EXPECT_NE(json.find("\"dv.delta_messages\":9"), std::string::npos);
}

TEST(Report, ChromeTraceHasCompleteEventsAndThreadNames) {
  Collector col(2);
  col.trace.record(0, "dv.converge", 10, 100);
  col.trace.record(1, "pregel.compute", 20, 30);
  std::ostringstream os;
  write_chrome_trace(col.trace, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"dv.converge\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"pregel.compute\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // One named track per used lane.
  EXPECT_NE(json.find("main/worker 0"), std::string::npos);
  EXPECT_NE(json.find("worker 1"), std::string::npos);
}

TEST(Report, JsonlTraceIsOneObjectPerLine) {
  Collector col(1);
  col.trace.record(0, "stream.apply", 5, 50);
  std::ostringstream os;
  write_trace_jsonl(col.trace, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"name\":\"stream.apply\""), std::string::npos);
  EXPECT_NE(out.find("\"dur_us\":50"), std::string::npos);
  // Exactly one newline-terminated record.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
}

TEST(Report, SessionIsInertWithoutPaths) {
  ObsSession session(ReportOptions{});
  EXPECT_FALSE(session.enabled());
  EXPECT_EQ(session.collector(), nullptr);
  EXPECT_EQ(current(), nullptr);  // nothing installed
  session.flush();                // harmless no-op
}

TEST(Report, SessionInstallsGloballyAndWritesMetricsFile) {
  const std::string path = ::testing::TempDir() + "dv_obs_metrics.json";
  {
    ReportOptions opts;
    opts.metrics_path = path;
    ObsSession session(opts);
    ASSERT_TRUE(session.enabled());
    EXPECT_EQ(current(), session.collector());
    session.collector()->metrics.shard(0).add(Counter::kMemoHits, 11);
    EpochMetrics em;
    em.epoch = 0;
    em.warm = true;
    session.add_epoch(std::move(em));
    session.flush();
  }
  EXPECT_EQ(current(), nullptr);  // uninstalled on destruction
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"dv.memo_hits\":11"), std::string::npos);
  EXPECT_NE(ss.str().find("\"warm\":true"), std::string::npos);
}

}  // namespace
}  // namespace deltav::obs
