// Negative-path sweep over the language-extension diagnostics: `param`,
// `vertexId`, `u.edge`, degree (`|д|`), and `stable` misuse must be
// rejected with a precise source position, not just "somewhere".

#include <gtest/gtest.h>

#include <string>

#include "dv/compiler.h"
#include "dv/diagnostics.h"

namespace deltav::dv {
namespace {

void expect_error_at(const std::string& src, int line, int col,
                     const std::string& substr) {
  try {
    compile(src);
    FAIL() << "expected CompileError containing '" << substr
           << "' for:\n" << src;
  } catch (const CompileError& e) {
    EXPECT_EQ(e.loc().line, line) << e.what() << "\nsource:\n" << src;
    EXPECT_EQ(e.loc().col, col) << e.what() << "\nsource:\n" << src;
    EXPECT_NE(std::string(e.what()).find(substr), std::string::npos)
        << "message '" << e.what() << "' lacks '" << substr << "'";
  }
}

TEST(Diagnostics, FieldShadowingParamIsPositioned) {
  expect_error_at(
      "param steps : int;\n"
      "init {\n"
      "  local steps : float = 1.0\n"
      "};\n"
      "step {\n"
      "  steps = 2.0\n"
      "}\n",
      3, 3, "shadows a parameter");
}

TEST(Diagnostics, ParamTypeMismatchInLocalInit) {
  expect_error_at(
      "param src : int;\n"
      "init {\n"
      "  local x : bool = src\n"
      "};\n"
      "step {\n"
      "  x = true\n"
      "}\n",
      3, 3, "declared bool");
}

TEST(Diagnostics, VertexIdInUntilClause) {
  expect_error_at(
      "init {\n"
      "  local x : int = vertexId\n"
      "};\n"
      "iter i {\n"
      "  x = x + 1\n"
      "} until { vertexId > 0 }\n",
      6, 11, "'vertexId' is per-vertex");
}

TEST(Diagnostics, StableOutsideUntilClause) {
  expect_error_at(
      "init {\n"
      "  local x : bool = stable\n"
      "};\n"
      "step {\n"
      "  x = true\n"
      "}\n",
      2, 20, "'stable' is only valid in until clauses");
}

TEST(Diagnostics, EdgeWeightOutsideAggregation) {
  expect_error_at(
      "init {\n"
      "  local x : float = 0.0\n"
      "};\n"
      "step {\n"
      "  x = u.edge\n"
      "}\n",
      5, 8, "field access is only valid on the aggregation");
}

TEST(Diagnostics, DegreeInUntilClause) {
  expect_error_at(
      "init {\n"
      "  local x : int = |#out|\n"
      "};\n"
      "iter i {\n"
      "  x = x + 1\n"
      "} until { |#out| > 3 }\n",
      6, 11, "degree is per-vertex");
}

TEST(Diagnostics, AggregationInInitBlock) {
  expect_error_at(
      "init {\n"
      "  local x : float = + [ u.x | u <- #in ]\n"
      "};\n"
      "step {\n"
      "  x = 1.0\n"
      "}\n",
      2, 21, "aggregations are not allowed in init");
}

TEST(Diagnostics, AggregationUnderConditional) {
  expect_error_at(
      "init {\n"
      "  local x : float = 0.0\n"
      "};\n"
      "step {\n"
      "  if x > 0.0 then x = + [ u.x | u <- #in ]\n"
      "}\n",
      5, 23, "aggregation under a conditional");
}

TEST(Diagnostics, UntilReadsVertexField) {
  expect_error_at(
      "init {\n"
      "  local x : int = 0\n"
      "};\n"
      "iter i {\n"
      "  x = x + 1\n"
      "} until { x > 3 }\n",
      6, 11, "until conditions may not read vertex fields");
}

TEST(Diagnostics, UndefinedName) {
  expect_error_at(
      "init {\n"
      "  local x : int = 0\n"
      "};\n"
      "step {\n"
      "  x = y + 1\n"
      "}\n",
      5, 7, "undefined name 'y'");
}

TEST(Diagnostics, DuplicateFieldDeclaration) {
  expect_error_at(
      "init {\n"
      "  local x : int = 0;\n"
      "  local x : int = 1\n"
      "};\n"
      "step {\n"
      "  x = x + 1\n"
      "}\n",
      3, 3, "duplicate field 'x'");
}

TEST(Diagnostics, AggregationInUntilClause) {
  expect_error_at(
      "init {\n"
      "  local x : float = 0.0\n"
      "};\n"
      "iter i {\n"
      "  let s : float = + [ u.x | u <- #in ] in\n"
      "  x = s\n"
      "} until { + [ u.x | u <- #in ] > 1.0 }\n",
      7, 11, "aggregations are not allowed in until clauses");
}

}  // namespace
}  // namespace deltav::dv
