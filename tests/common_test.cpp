#include <gtest/gtest.h>

#include <bit>
#include <random>
#include <set>
#include <sstream>

#include "common/args.h"
#include "common/check.h"
#include "common/hash.h"
#include "common/open_hash_map.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/timer.h"

namespace deltav {
namespace {

// ----------------------------------------------------------------- check.h

TEST(Check, PassingCheckIsSilent) { DV_CHECK(1 + 1 == 2); }

TEST(Check, FailingCheckThrowsCheckError) {
  EXPECT_THROW(DV_CHECK(false), CheckError);
}

TEST(Check, MessageIncludesExpressionAndDetail) {
  try {
    DV_CHECK_MSG(2 > 3, "math broke: " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("2 > 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("math broke: 42"),
              std::string::npos);
  }
}

TEST(Check, FailAlwaysThrows) { EXPECT_THROW(DV_FAIL("boom"), CheckError); }

// ------------------------------------------------------------------- rng.h

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_below(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanIsRoughlyHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(99);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

// ------------------------------------------------------------------ hash.h

TEST(Hash, Mix64IsBijectiveOnSamples) {
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 4096; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 4096u);
}

TEST(Hash, Mix64Avalanches) {
  int total = 0;
  for (int bit = 0; bit < 64; ++bit)
    total += std::popcount(mix64(0x1234567890ABCDEFULL) ^
                           mix64(0x1234567890ABCDEFULL ^ (1ULL << bit)));
  EXPECT_NEAR(static_cast<double>(total) / 64, 32.0, 6.0);
}

TEST(Hash, Fnv1aDistinguishesStrings) {
  EXPECT_NE(fnv1a("hello"), fnv1a("hellp"));
  EXPECT_EQ(fnv1a("same"), fnv1a("same"));
}

TEST(Hash, HashCombineOrderSensitive) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

// --------------------------------------------------------- open_hash_map.h

TEST(OpenHashMap, InsertAndFind) {
  OpenHashMap<int> m;
  m[42] = 7;
  ASSERT_NE(m.find(42), nullptr);
  EXPECT_EQ(*m.find(42), 7);
  EXPECT_EQ(m.find(43), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(OpenHashMap, OperatorBracketDefaultConstructs) {
  OpenHashMap<int> m;
  EXPECT_EQ(m[5], 0);
  m[5] += 3;
  EXPECT_EQ(m[5], 3);
}

TEST(OpenHashMap, GrowsPastInitialCapacity) {
  OpenHashMap<std::uint64_t> m(16);
  for (std::uint64_t k = 0; k < 10000; ++k) m[k * 977] = k;
  EXPECT_EQ(m.size(), 10000u);
  for (std::uint64_t k = 0; k < 10000; ++k) {
    ASSERT_NE(m.find(k * 977), nullptr) << k;
    EXPECT_EQ(*m.find(k * 977), k);
  }
}

TEST(OpenHashMap, ClearKeepsCapacityDropsEntries) {
  OpenHashMap<int> m;
  for (std::uint64_t k = 1; k <= 100; ++k) m[k] = 1;
  const auto cap = m.capacity();
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.find(50), nullptr);
}

TEST(OpenHashMap, ForEachVisitsEverything) {
  OpenHashMap<int> m;
  for (std::uint64_t k = 1; k <= 64; ++k) m[k] = static_cast<int>(k);
  int sum = 0, count = 0;
  m.for_each([&](std::uint64_t, const int& v) {
    sum += v;
    ++count;
  });
  EXPECT_EQ(count, 64);
  EXPECT_EQ(sum, 64 * 65 / 2);
}

TEST(OpenHashMap, AdversarialCollidingKeys) {
  OpenHashMap<int> m(16);
  for (std::uint64_t k = 0; k < 200; ++k) m[k << 32] = static_cast<int>(k);
  for (std::uint64_t k = 0; k < 200; ++k)
    EXPECT_EQ(*m.find(k << 32), static_cast<int>(k));
}

// ----------------------------------------------------------------- table.h

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(42LL);
  t.row().cell("beta").cell(3.14159, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RatioFormatting) {
  Table t({"x"});
  t.row().ratio(4.4);
  EXPECT_NE(t.to_string().find("4.40x"), std::string::npos);
}

TEST(Table, CellWithoutRowThrows) {
  Table t({"x"});
  EXPECT_THROW(t.cell("oops"), CheckError);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"x"});
  t.row().cell("a");
  EXPECT_THROW(t.cell("b"), CheckError);
}

// ------------------------------------------------------------------ args.h

Args make_args(std::vector<std::string> argv) {
  static std::vector<std::string> storage;  // keep c_str()s alive
  storage = std::move(argv);
  std::vector<const char*> ptrs;
  ptrs.push_back("prog");
  for (const auto& a : storage) ptrs.push_back(a.c_str());
  return Args(static_cast<int>(ptrs.size()), ptrs.data());
}

TEST(Args, ParsesEqualsAndSpaceForms) {
  auto args = make_args({"--alpha=3", "--beta", "4"});
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_int("beta", 0), 4);
  args.check_unused();
}

TEST(Args, DefaultsApply) {
  auto args = make_args({});
  EXPECT_EQ(args.get_int("n", 17), 17);
  EXPECT_EQ(args.get_string("s", "dflt"), "dflt");
  EXPECT_TRUE(args.get_bool("b", true));
  EXPECT_DOUBLE_EQ(args.get_double("d", 2.5), 2.5);
}

TEST(Args, BareBooleanFlag) {
  auto args = make_args({"--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(Args, UnknownFlagDetected) {
  auto args = make_args({"--typo=1"});
  args.get_int("scale", 1);
  EXPECT_THROW(args.check_unused(), CheckError);
}

TEST(Args, MalformedIntRejected) {
  auto args = make_args({"--n=12x"});
  EXPECT_THROW(args.get_int("n", 0), CheckError);
}

TEST(Args, HelpRequested) {
  auto args = make_args({"--help"});
  EXPECT_TRUE(args.help_requested());
  args.get_int("n", 3, "a number");
  EXPECT_NE(args.help().find("a number"), std::string::npos);
}

// ----------------------------------------------------------------- timer.h

TEST(Timer, MeasuresElapsedMonotonically) {
  Timer t;
  const double a = t.elapsed_seconds();
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double b = t.elapsed_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.restart();
  EXPECT_LE(t.elapsed_seconds(), b + 1.0);
}

}  // namespace
}  // namespace deltav
