#include <gtest/gtest.h>

#include "dv/compiler.h"

namespace deltav::dv {
namespace {

Program check_ok(const std::string& src) {
  Diagnostics diags;
  return parse_and_check(src, diags);
}

void check_fails(const std::string& src, const std::string& needle) {
  Diagnostics diags;
  try {
    parse_and_check(src, diags);
    FAIL() << "expected a type error containing '" << needle << "'";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual error: " << e.what();
  }
}

TEST(Typecheck, RegistersUserFields) {
  const auto p = check_ok(
      "init { local a : float = 1.0; local b : int = 2 };"
      "step { a = 2.0 }");
  ASSERT_EQ(p.fields.size(), 2u);
  EXPECT_EQ(p.fields[0].name, "a");
  EXPECT_EQ(p.fields[0].type, Type::kFloat);
  EXPECT_EQ(p.fields[0].origin, Field::Origin::kUser);
}

TEST(Typecheck, ResolvesFieldReferences) {
  const auto p = check_ok(
      "init { local a : float = 1.0 }; step { a = a + 1.0 }");
  const Expr& assign = *p.stmts[0].body;
  EXPECT_EQ(assign.kind, ExprKind::kAssign);
  EXPECT_EQ(assign.slot, 0);
  EXPECT_EQ(assign.kids[0]->kids[0]->kind, ExprKind::kFieldRef);
}

TEST(Typecheck, IntWidensToFloat) {
  check_ok("init { local a : float = 1 }; step { a = 2 }");
}

TEST(Typecheck, FloatDoesNotNarrowToInt) {
  check_fails("init { local a : int = 1.5 }; step { a = 1 }",
              "declared int");
}

TEST(Typecheck, DivisionAlwaysFloat) {
  // 1 / graphSize in a float context is legal because / yields float...
  check_ok("init { local a : float = 1 / graphSize }; step { a = 1.0 }");
  // ...and illegal in an int context.
  check_fails("init { local a : int = 4 / 2 }; step { a = 1 }",
              "declared int");
}

TEST(Typecheck, UndefinedNameReported) {
  check_fails("init { local a : int = 0 }; step { a = missing }",
              "undefined name 'missing'");
}

TEST(Typecheck, AssignToUndefinedFieldReported) {
  check_fails("init { local a : int = 0 }; step { ghost = 1 }",
              "undefined field 'ghost'");
}

TEST(Typecheck, LetVariablesAreImmutable) {
  check_fails(
      "init { local a : int = 0 };"
      "step { let t : int = 1 in t = 2 }",
      "immutable");
}

TEST(Typecheck, AssignmentToShadowingLetRejected) {
  // The let shadows the field, and lets are immutable.
  check_fails(
      "init { local a : int = 7 };"
      "step { let a : float = 1.0 in a = 2.0 }",
      "immutable");
}

TEST(Typecheck, LetShadowReadsInnerBinding) {
  const auto p = check_ok(
      "init { local a : int = 7; local b : float = 0.0 };"
      "step { let a : float = 1.5 in b = a }");
  (void)p;
}

TEST(Typecheck, DuplicateFieldRejected) {
  check_fails("init { local a : int = 0; local a : float = 1.0 };"
              "step { a = 1 }",
              "duplicate field");
}

TEST(Typecheck, LocalOutsideInitRejected) {
  check_fails("init { local a : int = 0 }; step { local b : int = 1 }",
              "only allowed in the init block");
}

TEST(Typecheck, AssignInsideInitRejected) {
  check_fails("init { local a : int = 0; a = 1 }; step { a = 2 }",
              "not allowed in init");
}

TEST(Typecheck, AggregationInInitRejected) {
  check_fails(
      "init { local a : float = + [ u.a | u <- #in ] }; step { a = 1.0 }",
      "not allowed in init");
}

TEST(Typecheck, NestedAggregationRejected) {
  check_fails(
      "init { local a : float = 0.0 };"
      "step { a = + [ u.a + + [ w.a | w <- #out ] | u <- #in ] }",
      "nested aggregations");
}

TEST(Typecheck, AggregationUnderConditionalRejected) {
  check_fails(
      "init { local a : float = 0.0 };"
      "step { if a > 0.0 then a = + [ u.a | u <- #in ] }",
      "under a conditional");
}

TEST(Typecheck, AggregationOperatorTypeMismatch) {
  check_fails(
      "init { local a : float = 0.0 };"
      "step { a = if && [ u.a | u <- #in ] then 1.0 else 0.0 }",
      "does not support element type");
}

TEST(Typecheck, NeighborFieldMustExist) {
  check_fails(
      "init { local a : float = 0.0 };"
      "step { a = + [ u.ghost | u <- #in ] }",
      "unknown field 'ghost'");
}

TEST(Typecheck, EdgeWeightOnlyInAggregation) {
  // u.edge outside an aggregation can't even parse (binder scope), so
  // exercise the in-aggregation path positively.
  check_ok(
      "init { local d : float = 0.0 };"
      "step { d = min [ u.d + u.edge | u <- #in ] }");
}

TEST(Typecheck, UntilMustBeBool) {
  check_fails(
      "init { local a : int = 0 }; iter i { a = 1 } until { i + 1 }",
      "must be bool");
}

TEST(Typecheck, UntilMayNotReadFields) {
  check_fails(
      "init { local a : int = 0 }; iter i { a = 1 } until { a > 3 }",
      "may not read vertex fields");
}

TEST(Typecheck, UntilMayNotUseVertexId) {
  check_fails(
      "init { local a : int = 0 }; iter i { a = 1 } "
      "until { vertexId == 0 }",
      "not allowed in until");
}

TEST(Typecheck, StableOnlyInUntil) {
  check_fails(
      "init { local a : bool = false }; step { a = stable }",
      "only valid in until");
}

TEST(Typecheck, StableInUntilIsFine) {
  check_ok("init { local a : int = 0 }; iter i { a = 1 } until { stable }");
}

TEST(Typecheck, IterVarIsInt) {
  check_ok(
      "init { local a : int = 0 }; iter i { a = i } until { i >= 2 }");
}

TEST(Typecheck, IterVarShadowingFieldRejected) {
  check_fails(
      "init { local i : int = 0 }; iter i { i = 1 } until { i >= 2 }",
      "shadows a vertex field");
}

TEST(Typecheck, ParamsResolve) {
  const auto p = check_ok(
      "param src : int;"
      "init { local d : float = if vertexId == src then 0 else infty };"
      "step { d = 1.0 }");
  EXPECT_EQ(p.params.size(), 1u);
}

TEST(Typecheck, BooleanOperatorsRequireBool) {
  check_fails("init { local a : bool = 1 && true }; step { a = true }",
              "bool operands");
}

TEST(Typecheck, ArithmeticRequiresNumbers) {
  check_fails("init { local a : bool = true }; "
              "step { a = (true + false) > 0 }",
              "non-numeric");
}

TEST(Typecheck, ComparisonResultIsBool) {
  check_ok("init { local a : bool = 1 < 2 }; step { a = 3.5 >= 2 }");
}

TEST(Typecheck, MixedEqualityRejected) {
  check_fails("init { local a : bool = true == 1 }; step { a = false }",
              "incompatible types");
}

TEST(Typecheck, WarningOnNoFields) {
  // A stateless program still typechecks but warns.
  Diagnostics diags;
  parse_and_check("init { 0 }; step { 0 }", diags);
  EXPECT_TRUE(diags.has_warning_containing("no vertex state fields"));
}

}  // namespace
}  // namespace deltav::dv
