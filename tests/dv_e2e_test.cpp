// End-to-end equivalence tests: for every benchmark program, the compiled
// ΔV and ΔV* variants must agree with the hand-written Pregel+ baseline and
// with a sequential oracle — and the paper's message-count relationships
// must hold (ΔV < ΔV* on PageRank/HITS; exact equality on SSSP/CC).
#include <gtest/gtest.h>

#include "algorithms/connected_components.h"
#include "algorithms/hits.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "dv/programs/programs.h"
#include "test_util.h"

namespace deltav {
namespace {

using dv::Value;
using test::compile_dv;
using test::expect_close;
using test::small_engine;

dv::DvRunResult run(const dv::CompiledProgram& cp, const graph::CsrGraph& g,
                    std::map<std::string, Value> params = {},
                    int workers = 3) {
  dv::DvRunOptions o;
  o.engine = small_engine(workers);
  o.params = std::move(params);
  return dv::run_program(cp, g, o);
}

// ---------------------------------------------------------------------------
// PageRank
// ---------------------------------------------------------------------------

TEST(EndToEnd, PageRankMatchesOracleAndBaseline) {
  const auto g = test::small_directed();
  const int supersteps = 30;  // Figure-1 convention: 29 rank updates

  const auto oracle = algorithms::pagerank_oracle(g, supersteps);
  algorithms::PageRankOptions popt;
  popt.iterations = supersteps;
  popt.engine = small_engine();
  const auto hand = algorithms::pagerank_pregel(g, popt);
  expect_close(hand.rank, oracle, 1e-12);

  const auto params = std::map<std::string, Value>{
      {"steps", Value::of_int(supersteps - 1)}};
  const auto dv_star = run(compile_dv(dv::programs::kPageRank, false), g,
                           params);
  expect_close(dv_star.field_as_double("vl"), oracle, 1e-12);

  const auto dv_full = run(compile_dv(dv::programs::kPageRank, true), g,
                           params);
  expect_close(dv_full.field_as_double("vl"), oracle, 1e-9);
}

TEST(EndToEnd, PageRankIncrementalizationReducesMessages) {
  const auto g = graph::rmat(256, 2048, 21);
  const auto params =
      std::map<std::string, Value>{{"steps", Value::of_int(29)}};
  const auto dv_star =
      run(compile_dv(dv::programs::kPageRank, false), g, params);
  const auto dv_full =
      run(compile_dv(dv::programs::kPageRank, true), g, params);
  EXPECT_LT(dv_full.stats.total_messages_sent(),
            dv_star.stats.total_messages_sent());
  EXPECT_LT(dv_full.stats.total_bytes_sent(),
            dv_star.stats.total_bytes_sent());
}

TEST(EndToEnd, PageRankUndirectedVariant) {
  const auto g = test::small_undirected();
  const auto oracle = algorithms::pagerank_oracle(g, 20);
  const auto params =
      std::map<std::string, Value>{{"steps", Value::of_int(19)}};
  const auto dv_full =
      run(compile_dv(dv::programs::kPageRankUndirected, true), g, params);
  expect_close(dv_full.field_as_double("vl"), oracle, 1e-9);
}

// ---------------------------------------------------------------------------
// SSSP
// ---------------------------------------------------------------------------

TEST(EndToEnd, SsspMatchesDijkstraAndMessageCountsAreEqual) {
  graph::RmatOptions ro;
  ro.weighted = true;
  const auto g = graph::rmat(128, 512, 5, ro);
  const graph::VertexId source = 3;

  const auto oracle = algorithms::sssp_oracle(g, source);
  algorithms::SsspOptions sopt;
  sopt.source = source;
  sopt.engine = small_engine();
  sopt.use_combiner = false;  // count raw messages for exact comparison
  const auto hand = algorithms::sssp_pregel(g, sopt);
  expect_close(hand.distance, oracle, 1e-9);

  const auto params =
      std::map<std::string, Value>{{"source", Value::of_int(source)}};
  dv::DvRunOptions dopt;
  dopt.engine = small_engine();
  dopt.use_combiner = false;
  dopt.params = params;

  const auto dv_star =
      dv::run_program(compile_dv(dv::programs::kSssp, false), g, dopt);
  expect_close(dv_star.field_as_double("dist"), oracle, 1e-9);

  // The paper's message-count identity is a property of the buffered
  // message pipeline; under the default fold path SSSP's min-aggregation
  // is proven commutative and sends no messages at all. Pin the buffered
  // path for the §7.2 comparison, then check the atomic path separately.
  dopt.fold_path = dv::FoldPath::kBuffered;
  const auto dv_full =
      dv::run_program(compile_dv(dv::programs::kSssp, true), g, dopt);
  expect_close(dv_full.field_as_double("dist"), oracle, 1e-9);

  // §7.2: "ΔV* and ΔV in fact sending the exact same number of messages".
  EXPECT_EQ(dv_full.stats.total_messages_sent(),
            dv_star.stats.total_messages_sent());
  // And both match the hand-written Pregel+ algorithm.
  EXPECT_EQ(dv_full.stats.total_messages_sent(),
            hand.stats.total_messages_sent());

  // Lock-free fold path: identical distances, message-free exchange.
  dopt.fold_path = dv::FoldPath::kAtomic;
  const auto dv_atomic =
      dv::run_program(compile_dv(dv::programs::kSssp, true), g, dopt);
  expect_close(dv_atomic.field_as_double("dist"), oracle, 1e-9);
  EXPECT_EQ(dv_atomic.stats.total_messages_sent(), 0u);
}

// ---------------------------------------------------------------------------
// Connected components
// ---------------------------------------------------------------------------

TEST(EndToEnd, ConnectedComponentsMatchesUnionFind) {
  const auto g = test::small_undirected(11);
  const auto oracle = algorithms::connected_components_oracle(g);

  algorithms::CcOptions copt;
  copt.engine = small_engine();
  copt.use_combiner = false;
  const auto hand = algorithms::connected_components_pregel(g, copt);
  ASSERT_EQ(hand.component.size(), oracle.size());
  for (std::size_t v = 0; v < oracle.size(); ++v)
    EXPECT_EQ(hand.component[v], oracle[v]) << "vertex " << v;

  dv::DvRunOptions dopt;
  dopt.engine = small_engine();
  dopt.use_combiner = false;
  const auto dv_star = dv::run_program(
      compile_dv(dv::programs::kConnectedComponents, false), g, dopt);
  // Message counts compare the buffered pipeline (Figure 5 is about
  // messages); CC's int-min aggregation otherwise routes atomic and sends
  // none. The atomic variant is checked for result equality below.
  dopt.fold_path = dv::FoldPath::kBuffered;
  const auto dv_full = dv::run_program(
      compile_dv(dv::programs::kConnectedComponents, true), g, dopt);
  dopt.fold_path = dv::FoldPath::kAtomic;
  const auto dv_atomic = dv::run_program(
      compile_dv(dv::programs::kConnectedComponents, true), g, dopt);
  const auto star_comp = dv_star.field_as_int("comp");
  const auto full_comp = dv_full.field_as_int("comp");
  const auto atomic_comp = dv_atomic.field_as_int("comp");
  for (std::size_t v = 0; v < oracle.size(); ++v) {
    EXPECT_EQ(star_comp[v], static_cast<std::int64_t>(oracle[v]));
    EXPECT_EQ(full_comp[v], static_cast<std::int64_t>(oracle[v]));
    EXPECT_EQ(atomic_comp[v], static_cast<std::int64_t>(oracle[v]));
  }

  // Figure 5 / §7.2: identical message counts across all three systems.
  EXPECT_EQ(dv_full.stats.total_messages_sent(),
            dv_star.stats.total_messages_sent());
  EXPECT_EQ(dv_full.stats.total_messages_sent(),
            hand.stats.total_messages_sent());
  // The lock-free fold path removes the message exchange entirely.
  EXPECT_EQ(dv_atomic.stats.total_messages_sent(), 0u);
}

// ---------------------------------------------------------------------------
// HITS
// ---------------------------------------------------------------------------

TEST(EndToEnd, HitsMatchesOracleAndBaseline) {
  const auto g = test::small_directed(13);
  const int rounds = 5;

  std::vector<double> oh, oa;
  algorithms::hits_oracle(g, rounds, oh, oa);

  algorithms::HitsOptions hopt;
  hopt.iterations = rounds;
  hopt.engine = small_engine();
  const auto hand = algorithms::hits_pregel(g, hopt);
  expect_close(hand.hub, oh, 1e-9);
  expect_close(hand.authority, oa, 1e-9);

  const auto params =
      std::map<std::string, Value>{{"steps", Value::of_int(rounds)}};
  const auto dv_star =
      run(compile_dv(dv::programs::kHits, false), g, params);
  expect_close(dv_star.field_as_double("hub"), oh, 1e-9);
  expect_close(dv_star.field_as_double("auth"), oa, 1e-9);

  const auto dv_full = run(compile_dv(dv::programs::kHits, true), g, params);
  expect_close(dv_full.field_as_double("hub"), oh, 1e-6);
  expect_close(dv_full.field_as_double("auth"), oa, 1e-6);
}

TEST(EndToEnd, HitsIncrementalizationNeverSendsMore) {
  const auto g = graph::rmat(256, 1024, 31);
  const auto params =
      std::map<std::string, Value>{{"steps", Value::of_int(7)}};
  const auto dv_star =
      run(compile_dv(dv::programs::kHits, false), g, params);
  const auto dv_full = run(compile_dv(dv::programs::kHits, true), g, params);
  EXPECT_LE(dv_full.stats.total_messages_sent(),
            dv_star.stats.total_messages_sent());
}

// ---------------------------------------------------------------------------
// Multiplicative / idempotent operators
// ---------------------------------------------------------------------------

TEST(EndToEnd, ReachabilityMatchesBfs) {
  const auto g = test::small_directed(17);
  const graph::VertexId source = 0;

  // BFS truth over out-edges.
  std::vector<char> reach(g.num_vertices(), 0);
  std::vector<graph::VertexId> stack{source};
  reach[source] = 1;
  while (!stack.empty()) {
    const auto v = stack.back();
    stack.pop_back();
    for (auto u : g.out_neighbors(v))
      if (!reach[u]) {
        reach[u] = 1;
        stack.push_back(u);
      }
  }

  const auto params =
      std::map<std::string, Value>{{"source", Value::of_int(source)}};
  for (bool incremental : {false, true}) {
    const auto result =
        run(compile_dv(dv::programs::kReachability, incremental), g, params);
    const int slot = result.field_slot("reached");
    for (std::size_t v = 0; v < g.num_vertices(); ++v)
      EXPECT_EQ(result.at(static_cast<graph::VertexId>(v), slot).as_b(),
                reach[v] != 0)
          << "vertex " << v << " incremental=" << incremental;
  }
}

TEST(EndToEnd, MaxGossipReachesComponentMaximum) {
  const auto g = test::small_undirected(23);
  const auto comp = algorithms::connected_components_oracle(g);
  std::vector<std::int64_t> expected(g.num_vertices());
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    std::int64_t best = -1;
    for (std::size_t u = 0; u < g.num_vertices(); ++u)
      if (comp[u] == comp[v])
        best = std::max<std::int64_t>(best, static_cast<std::int64_t>(u));
    expected[v] = best;
  }
  for (bool incremental : {false, true}) {
    const auto result =
        run(compile_dv(dv::programs::kMaxGossip, incremental), g);
    const auto big = result.field_as_int("big");
    for (std::size_t v = 0; v < g.num_vertices(); ++v)
      EXPECT_EQ(big[v], expected[v]) << "vertex " << v;
  }
}

// ---------------------------------------------------------------------------
// Robustness across engine configurations
// ---------------------------------------------------------------------------

struct EngineConfig {
  int workers;
  pregel::PartitionScheme partition;
  pregel::ScheduleMode schedule;
  bool combiner;
};

class EngineMatrixTest : public ::testing::TestWithParam<EngineConfig> {};

TEST_P(EngineMatrixTest, PageRankAgreesEverywhere) {
  const auto& cfg = GetParam();
  const auto g = test::small_directed(29);
  const auto oracle = algorithms::pagerank_oracle(g, 20);

  dv::DvRunOptions o;
  o.engine.num_workers = cfg.workers;
  o.engine.partition = cfg.partition;
  o.engine.schedule = cfg.schedule;
  o.use_combiner = cfg.combiner;
  o.params = {{"steps", Value::of_int(19)}};
  const auto result =
      dv::run_program(compile_dv(dv::programs::kPageRank, true), g, o);
  expect_close(result.field_as_double("vl"), oracle, 1e-9);
}

TEST_P(EngineMatrixTest, SsspAgreesEverywhere) {
  const auto& cfg = GetParam();
  graph::RmatOptions ro;
  ro.weighted = true;
  const auto g = graph::rmat(96, 400, 41, ro);
  const auto oracle = algorithms::sssp_oracle(g, 1);

  dv::DvRunOptions o;
  o.engine.num_workers = cfg.workers;
  o.engine.partition = cfg.partition;
  o.engine.schedule = cfg.schedule;
  o.use_combiner = cfg.combiner;
  o.params = {{"source", Value::of_int(1)}};
  const auto result =
      dv::run_program(compile_dv(dv::programs::kSssp, true), g, o);
  expect_close(result.field_as_double("dist"), oracle, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EngineMatrixTest,
    ::testing::Values(
        EngineConfig{1, pregel::PartitionScheme::kBlock,
                     pregel::ScheduleMode::kScanAll, true},
        EngineConfig{2, pregel::PartitionScheme::kBlock,
                     pregel::ScheduleMode::kScanAll, false},
        EngineConfig{4, pregel::PartitionScheme::kHash,
                     pregel::ScheduleMode::kScanAll, true},
        EngineConfig{4, pregel::PartitionScheme::kBlock,
                     pregel::ScheduleMode::kWorkQueue, true},
        EngineConfig{3, pregel::PartitionScheme::kHash,
                     pregel::ScheduleMode::kWorkQueue, false},
        EngineConfig{8, pregel::PartitionScheme::kHash,
                     pregel::ScheduleMode::kWorkQueue, true}));

}  // namespace
}  // namespace deltav
