// Remote-read language extension (`remote(u).f`): lowering goldens, the
// typechecker's remote restrictions, the new-algorithm workloads (k-core,
// MIS, BFS) held bit-exact against their hand-written Pregel baselines and
// sequential oracles across variants and tiers, BFS streaming epochs
// staying warm under insertion, and the named native-tier fallback.

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "algorithms/bfs.h"
#include "algorithms/kcore.h"
#include "algorithms/mis.h"
#include "dv/codegen/native_module.h"
#include "dv/compiler.h"
#include "dv/obs/obs.h"
#include "common/rng.h"
#include "dv/programs/programs.h"
#include "dv/runtime/runner.h"
#include "dv/streaming/stream_session.h"
#include "dv/testing/remote_gen.h"
#include "graph/dynamic_graph.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "test_util.h"

namespace deltav::dv {
namespace {

using test::compile_dv;
using test::small_engine;

constexpr const char* kChase = R"(
init { local parent : int = vertexId };
step {
  let m : int = min [ u.parent | u <- #in ] in
  if m < parent then parent = m
};
iter i {
  let p : int = remote(parent).parent in
  if p != parent then parent = p
} until { stable }
)";

DvRunOptions run_opts(ExecTier tier = ExecTier::kVm) {
  DvRunOptions o;
  o.engine = small_engine();
  o.tier = tier;
  return o;
}

// ------------------------------------------------------------- lowering

TEST(RemoteLowering, EmitsRequestAndReplyPhases) {
  const CompiledProgram cp = compile(kChase, CompileOptions{});
  const std::string printed = to_string(cp.program);
  // Phase 0 sends the requester's id to the wrapped target; phase 1 loops
  // over requests answering with the owner's field.
  EXPECT_NE(printed.find("phase 0 {"), std::string::npos) << printed;
  EXPECT_NE(printed.find("phase 1 {"), std::string::npos) << printed;
  EXPECT_NE(printed.find("wrap("), std::string::npos) << printed;
  EXPECT_NE(printed.find("for(m : messages#"), std::string::npos) << printed;
  // The consume body reads the reply channel, not kRemoteRead.
  EXPECT_EQ(printed.find("remote("), std::string::npos) << printed;
}

TEST(RemoteLowering, ChannelSitesCarryNoAggregationState) {
  const CompiledProgram cp = compile(kChase, CompileOptions{});
  std::size_t channels = 0;
  for (const AggSite& site : cp.program.sites) {
    if (!site.is_channel()) continue;
    ++channels;
    EXPECT_EQ(site.send_expr, nullptr);
    EXPECT_LT(site.acc_slot, 0);
  }
  // One request + one reply channel for the single remote read.
  EXPECT_EQ(channels, 2u);
}

TEST(RemoteLowering, ReferenceModeKeepsRemoteRead) {
  CompileOptions o;
  o.lower_remote = false;
  const CompiledProgram cp = compile(kChase, o);
  const std::string printed = to_string(cp.program);
  EXPECT_NE(printed.find("remote("), std::string::npos) << printed;
  EXPECT_EQ(printed.find("phase 0 {"), std::string::npos) << printed;
}

// ------------------------------------------------------------ typecheck

void expect_compile_error(const std::string& src, const std::string& needle) {
  try {
    compile(src, CompileOptions{});
    FAIL() << "expected an error containing '" << needle << "'";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual error: " << e.what();
  }
}

TEST(RemoteTypecheck, RejectsUnknownField) {
  expect_compile_error(
      "init { local f : int = vertexId };"
      "iter i { f = remote(f).nosuch } until { i >= 1 }",
      "remote read of unknown field");
}

TEST(RemoteTypecheck, RejectsRemoteInUntil) {
  expect_compile_error(
      "init { local f : int = vertexId };"
      "iter i { f = f + 1 } until { remote(0).f > 0 }",
      "not allowed in until clauses");
}

TEST(RemoteTypecheck, RejectsMixingAggregationAndRemote) {
  expect_compile_error(
      "init { local f : int = vertexId };"
      "iter i { let m : int = min [ u.f | u <- #in ] in"
      "  f = m + remote(f).f } until { i >= 1 }",
      "aggregations and remote reads cannot share a");
}

// --------------------------------------------------- pointer jumping e2e

TEST(RemoteRun, PointerJumpingFindsChainRoots) {
  // Two chains: 0<-1<-2<-3<-4 and 5<-6.
  graph::GraphBuilder gb(7, /*directed=*/true);
  for (auto [a, b] : {std::pair<int, int>{0, 1}, {1, 2}, {2, 3}, {3, 4},
                      {5, 6}})
    gb.add_edge(a, b);
  const graph::CsrGraph g = gb.build();
  const std::vector<std::int64_t> want{0, 0, 0, 0, 0, 5, 5};

  for (bool inc : {true, false}) {
    const CompiledProgram cp = compile_dv(programs::kPointerJump, inc);
    for (ExecTier tier : {ExecTier::kTree, ExecTier::kVm}) {
      const DvRunResult r = run_program(cp, g, run_opts(tier));
      EXPECT_EQ(r.field_as_int("parent"), want)
          << "inc=" << inc << " tier=" << exec_tier_name(tier);
    }
    // Reference interpretation agrees.
    CompileOptions ro;
    ro.incrementalize = inc;
    ro.lower_remote = false;
    const CompiledProgram ref = compile(programs::kPointerJump, ro);
    const DvRunResult r = run_program(ref, g, run_opts(ExecTier::kTree));
    EXPECT_EQ(r.field_as_int("parent"), want) << "reference inc=" << inc;
  }
}

TEST(RemoteRun, CountsRequestsAndReplies) {
  const graph::CsrGraph g = graph::path(8, /*directed=*/true);
  const CompiledProgram cp = compile(programs::kPointerJump, CompileOptions{});
  obs::Collector collector;
  DvRunOptions o = run_opts(ExecTier::kTree);
  o.collector = &collector;
  run_program(cp, g, o);
  const auto snap = collector.metrics.snapshot();
  // Exactly one reply per request, and the phases actually ran.
  EXPECT_GT(snap.counter("dv.remote_requests"), 0u);
  EXPECT_EQ(snap.counter("dv.remote_requests"),
            snap.counter("dv.remote_replies"));
}

// --------------------------------------------------------------- k-core

std::vector<std::int64_t> to_i64(const std::vector<std::uint8_t>& v) {
  return std::vector<std::int64_t>(v.begin(), v.end());
}

TEST(KCoreWorkload, MatchesOracleAcrossVariantsAndTiers) {
  for (std::uint64_t seed : {11ULL, 12ULL}) {
    const graph::CsrGraph g = test::small_undirected(seed);
    const std::int64_t k = 3;
    const auto want = to_i64(algorithms::kcore_oracle(g, k));

    algorithms::KCoreOptions popt;
    popt.k = k;
    popt.engine = small_engine();
    EXPECT_EQ(to_i64(algorithms::kcore_pregel(g, popt).alive), want);

    DvRunOptions base = run_opts();
    base.params = {{"k", Value::of_int(k)},
                   {"rounds", Value::of_int(
                                  static_cast<std::int64_t>(g.num_vertices()))}};
    for (bool inc : {true, false}) {
      const CompiledProgram cp = compile_dv(programs::kKCore, inc);
      for (ExecTier tier : {ExecTier::kTree, ExecTier::kVm}) {
        DvRunOptions o = base;
        o.tier = tier;
        const DvRunResult r = run_program(cp, g, o);
        EXPECT_EQ(r.field_as_int("alive"), want)
            << "inc=" << inc << " tier=" << exec_tier_name(tier)
            << " seed=" << seed;
      }
    }
  }
}

// ------------------------------------------------------------------ MIS

TEST(MisWorkload, MatchesOracleAcrossVariantsAndTiers) {
  for (std::uint64_t seed : {21ULL, 22ULL}) {
    const graph::CsrGraph g = test::small_undirected(seed);
    const auto want = to_i64(algorithms::mis_oracle(g));

    algorithms::MisOptions popt;
    popt.engine = small_engine();
    EXPECT_EQ(to_i64(algorithms::mis_pregel(g, popt).in_set), want);

    // The ΔV program runs on the low→high orientation; state 1 = in.
    const graph::CsrGraph oriented = algorithms::orient_low_high(g);
    for (bool inc : {true, false}) {
      const CompiledProgram cp = compile_dv(programs::kMis, inc);
      for (ExecTier tier : {ExecTier::kTree, ExecTier::kVm}) {
        const DvRunResult r = run_program(cp, oriented, run_opts(tier));
        const auto state = r.field_as_int("state");
        std::vector<std::int64_t> in_set(state.size());
        for (std::size_t v = 0; v < state.size(); ++v)
          in_set[v] = state[v] == 1 ? 1 : 0;
        EXPECT_EQ(in_set, want) << "inc=" << inc
                                << " tier=" << exec_tier_name(tier)
                                << " seed=" << seed;
        // Every vertex must be decided at the fixpoint.
        for (std::size_t v = 0; v < state.size(); ++v)
          EXPECT_NE(state[v], 0) << "undecided vertex " << v;
      }
    }
  }
}

TEST(MisWorkload, OracleIsMaximalAndIndependent) {
  const graph::CsrGraph g = test::small_undirected(23);
  const auto in_set = algorithms::mis_oracle(g);
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    bool has_in_neighbor = false;
    for (graph::VertexId u : g.neighbors(static_cast<graph::VertexId>(v))) {
      if (in_set[u]) has_in_neighbor = true;
      if (in_set[v]) EXPECT_FALSE(in_set[u]) << v << " ~ " << u;
    }
    if (!in_set[v]) EXPECT_TRUE(has_in_neighbor) << "not maximal at " << v;
  }
}

// ------------------------------------------------------------------ BFS

TEST(BfsWorkload, MatchesOracleAcrossVariantsAndTiers) {
  const graph::CsrGraph g = test::small_directed(31);
  const auto want = algorithms::bfs_oracle(g, 0);

  algorithms::BfsOptions popt;
  popt.engine = small_engine();
  EXPECT_EQ(algorithms::bfs_pregel(g, popt).depth, want);

  DvRunOptions base = run_opts();
  base.params = {{"source", Value::of_int(0)}};
  for (bool inc : {true, false}) {
    const CompiledProgram cp = compile_dv(programs::kBfs, inc);
    for (ExecTier tier : {ExecTier::kTree, ExecTier::kVm}) {
      DvRunOptions o = base;
      o.tier = tier;
      const DvRunResult r = run_program(cp, g, o);
      // Depths are small integers: exact comparison is intended.
      EXPECT_EQ(r.field_as_double("dist"), want)
          << "inc=" << inc << " tier=" << exec_tier_name(tier);
    }
  }
}

TEST(BfsWorkload, StreamingInsertionStaysWarm) {
  using streaming::DvStreamSession;
  using streaming::SessionEpoch;
  using streaming::SessionOptions;

  const CompiledProgram cp = compile_dv(programs::kBfs);
  SessionOptions sopt;
  sopt.run.engine = small_engine();
  sopt.run.params = {{"source", Value::of_int(0)}};

  // A long path: inserting a shortcut edge re-levels a suffix.
  DvStreamSession s(cp, graph::path(32, /*directed=*/true), sopt);
  s.converge();

  graph::MutationBatch b;
  b.insert_edge(0, 16);
  const SessionEpoch ep = s.apply(b);
  EXPECT_TRUE(ep.warm) << "blocked: " << (ep.blocker ? ep.blocker : "?");

  // Value-identical to a cold run on the mutated topology.
  DvRunOptions o;
  o.engine = small_engine();
  o.params = sopt.run.params;
  const DvRunResult cold =
      run_program(cp, s.graph().materialize(), o);
  EXPECT_EQ(s.result().field_as_double("dist"), cold.field_as_double("dist"));
  // And the shortcut actually shortened the suffix.
  EXPECT_EQ(s.result().field_as_double("dist")[31], 16.0);
}

// -------------------------------------------------------- fuzz smoke

TEST(RemoteFuzzSmoke, GeneratedCasesPassDifferentialChecks) {
  const std::uint64_t seed = test::effective_seed(0x2E305EEDULL);
  Rng rng(seed);
  for (int k = 0; k < 60; ++k) {
    Rng crng = rng.split();
    const testing::RemoteCase rc = testing::generate_remote_case(crng);
    const auto fail = testing::check_remote_case(rc);
    ASSERT_FALSE(fail.has_value())
        << test::seed_banner(seed) << " case " << k << " ["
        << fail->check << "] " << fail->detail << "\ngraph "
        << rc.graph.describe() << "\n"
        << rc.source;
  }
}

// -------------------------------------------------------- native tier

TEST(RemoteNative, FallsBackWithNamedReason) {
  if (const std::string& why = native::native_unavailable_reason();
      !why.empty())
    GTEST_SKIP() << "native tier unavailable: " << why;
  const graph::CsrGraph g = graph::path(8, /*directed=*/true);
  const CompiledProgram cp = compile(programs::kPointerJump, CompileOptions{});
  obs::Collector collector;
  DvRunOptions o = run_opts(ExecTier::kNative);
  o.collector = &collector;
  const DvRunResult r = run_program(cp, g, o);
  // Remote programs never run native: phases are interpreted, the rest of
  // the statement runs on the VM — and the fallback is named, not silent.
  EXPECT_EQ(r.tier_used, ExecTier::kVm);
  EXPECT_NE(r.native_fallback.find("remote_read"), std::string::npos)
      << r.native_fallback;
  const auto snap = collector.metrics.snapshot();
  EXPECT_EQ(snap.counter("dv.native_fallbacks"), 1u);
  EXPECT_EQ(snap.counter("dv.native_fallbacks.remote_read"), 1u);
  // Correct answer regardless of the tier swap.
  std::vector<std::int64_t> want(8, 0);
  EXPECT_EQ(r.field_as_int("parent"), want);
}

}  // namespace
}  // namespace deltav::dv
