// Retraction memos (src/dv/streaming/retract/, DESIGN.md §11): bounded-
// memory k-best buffers that keep deletion-bearing min/max epochs warm.
//
// Two layers are covered. The RetractMemoTable unit tests pin the cell
// invariant down to the bit level — eviction tightens the bound,
// retraction of the extremum re-ranks in O(k), signed-zero and
// equal-value ties break deterministically (bits, then sender), and
// underflow is reported rather than guessed around. The session tests
// drive real deletion streams through DvStreamSession and require the
// warm result to match a from-scratch oracle, across fold paths, across
// tiers, and through snapshot round-trips (including the k-mismatch
// refusal — a k-best buffer cannot be reinterpreted across capacities).

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "dv/persist/snapshot.h"
#include "dv/programs/programs.h"
#include "dv/streaming/retract/retract_memo.h"
#include "dv/streaming/stream_session.h"
#include "graph/dynamic_graph.h"
#include "graph/graph_builder.h"
#include "test_util.h"

namespace deltav {
namespace {

using dv::RetractEntry;
using dv::RetractMemoTable;
using dv::streaming::DvStreamSession;
using dv::streaming::SessionEpoch;
using dv::streaming::SessionOptions;
using graph::MutationBatch;
using test::compile_dv;
using test::small_engine;

std::uint64_t fbits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// One float-min column with capacity k, n vertices, site id 0 routed.
RetractMemoTable min_table(std::size_t k, std::size_t n) {
  RetractMemoTable t;
  t.k = k;
  t.route = {0};
  t.site_of = {0};
  t.ops = {dv::AggOp::kMin};
  t.types = {dv::Type::kFloat};
  t.identity = {fbits(std::numeric_limits<double>::infinity())};
  t.reset(n);
  return t;
}

double acc_of(const RetractMemoTable& t, graph::VertexId v) {
  std::uint64_t bits = 0;
  EXPECT_EQ(t.query(v, 0, &bits), RetractMemoTable::CellState::kExact);
  return std::bit_cast<double>(bits);
}

// --------------------------------------------------------- memo cell unit

TEST(RetractMemo, EvictionRetractionAndUnderflow) {
  RetractMemoTable t = min_table(/*k=*/2, /*n=*/1);
  // Three contributions into a k=2 buffer: the worst (sender 2, 3.0) is
  // evicted and becomes the bound.
  t.apply(0, 0, /*sender=*/1, fbits(1.0));
  t.apply(0, 0, /*sender=*/2, fbits(3.0));
  t.apply(0, 0, /*sender=*/3, fbits(2.0));
  EXPECT_EQ(acc_of(t, 0), 1.0);

  // Retract the extremum (identity bits = removal): O(k) re-rank.
  EXPECT_EQ(t.apply(0, 0, 1, t.identity[0]),
            RetractMemoTable::Applied::kWorsened);
  EXPECT_EQ(acc_of(t, 0), 2.0);

  // Retract the survivor too: the buffer is empty but the bound remembers
  // the evicted 3.0 might still be out there — underflow, not identity.
  t.apply(0, 0, 3, t.identity[0]);
  std::uint64_t bits = 0;
  EXPECT_EQ(t.query(0, 0, &bits), RetractMemoTable::CellState::kUnderflow);

  // The targeted refold rebuilds the cell from the live contribution
  // list; afterwards the cell is exact (and exhaustive) again.
  const RetractEntry live[] = {{2, fbits(3.0)}};
  t.rebuild(0, 0, live, 1);
  EXPECT_EQ(acc_of(t, 0), 3.0);
  t.apply(0, 0, 2, t.identity[0]);
  EXPECT_EQ(t.query(0, 0, &bits), RetractMemoTable::CellState::kExact);
  EXPECT_EQ(bits, t.identity[0]);  // exhaustive empty cell = identity
}

TEST(RetractMemo, SignedZeroTieIsDeterministic) {
  // −0.0 == +0.0 as values; the raw-bits tiebreak must still order them
  // strictly so retraction picks a unique survivor on every tier.
  RetractMemoTable t = min_table(/*k=*/2, /*n=*/1);
  t.apply(0, 0, 1, fbits(-0.0));
  t.apply(0, 0, 2, fbits(+0.0));
  EXPECT_EQ(acc_of(t, 0), 0.0);
  // Retracting either zero leaves exactly the other one, bit-exact.
  t.apply(0, 0, 1, t.identity[0]);
  std::uint64_t bits = 0;
  ASSERT_EQ(t.query(0, 0, &bits), RetractMemoTable::CellState::kExact);
  EXPECT_EQ(bits, fbits(+0.0));
  EXPECT_EQ(t.apply(0, 0, 2, t.identity[0]),
            RetractMemoTable::Applied::kWorsened);
  ASSERT_EQ(t.query(0, 0, &bits), RetractMemoTable::CellState::kExact);
  EXPECT_EQ(bits, t.identity[0]);
}

TEST(RetractMemo, EqualValuesFromDistinctSendersAreKeyed) {
  // Equal payloads from different senders are distinct entries: removing
  // one must not disturb the other, even at k=1 via the bound.
  RetractMemoTable t = min_table(/*k=*/1, /*n=*/1);
  t.apply(0, 0, /*sender=*/7, fbits(5.0));
  t.apply(0, 0, /*sender=*/9, fbits(5.0));  // evicted or bound-tightening
  EXPECT_EQ(acc_of(t, 0), 5.0);
  // Remove the buffered one; the equal-valued twin was forgotten (k=1),
  // so the cell must underflow rather than silently claim identity.
  t.apply(0, 0, 7, t.identity[0]);
  std::uint64_t bits = 0;
  const auto st = t.query(0, 0, &bits);
  if (st == RetractMemoTable::CellState::kExact) {
    // The twin was the buffered survivor (sender tiebreak kept 9).
    EXPECT_EQ(bits, fbits(5.0));
  } else {
    const RetractEntry live[] = {{9, fbits(5.0)}};
    t.rebuild(0, 0, live, 1);
    EXPECT_EQ(acc_of(t, 0), 5.0);
  }
}

TEST(RetractMemo, DuplicateRecordIsUntouched) {
  RetractMemoTable t = min_table(/*k=*/2, /*n=*/1);
  t.apply(0, 0, 1, fbits(1.5));
  EXPECT_EQ(t.apply(0, 0, 1, fbits(1.5)),
            RetractMemoTable::Applied::kUntouched);
  EXPECT_EQ(t.apply(0, 0, 2, t.identity[0]),
            RetractMemoTable::Applied::kUntouched);  // absent sender
  EXPECT_EQ(acc_of(t, 0), 1.5);
}

// ------------------------------------------------------- session helpers

constexpr const char* kMinPublishFloat = R"(
init { local mass : float = 1.0 + vertexId; local m : float = infty };
iter i { m = min [ u.mass | u <- #in ] } until { i >= 1 }
)";

constexpr const char* kMinPublishInt = R"(
init { local mass : int = 1 + vertexId; local m : int = 0 };
iter i { m = min [ u.mass | u <- #in ] } until { i >= 1 }
)";

/// Fan: senders 0..4 all feed vertex 5 (masses monotone in id), plus a
/// tail edge so the graph has more than one receiver.
graph::CsrGraph fan_graph() {
  graph::GraphBuilder b(7, /*directed=*/true);
  b.keep_weights(true);
  for (graph::VertexId u = 0; u < 5; ++u) b.add_edge(u, 5, 1.0);
  b.add_edge(5, 6, 1.0);
  return b.build();
}

SessionOptions opts(std::size_t memo_k,
                    dv::ExecTier tier = dv::ExecTier::kVm) {
  SessionOptions o;
  o.run.engine = small_engine();
  o.run.tier = tier;
  o.minmax_memo_k = memo_k;
  return o;
}

dv::DvRunResult oracle(const dv::CompiledProgram& cp,
                       const DvStreamSession& s) {
  dv::DvRunOptions o;
  o.engine = small_engine();
  return dv::run_program(cp, s.graph().materialize(), o);
}

// --------------------------------------------------- underflow end-to-end

TEST(RetractStream, UnderflowTriggersTargetedRefold) {
  const auto cp = compile_dv(kMinPublishFloat);
  DvStreamSession s(cp, fan_graph(), opts(/*memo_k=*/1));
  s.converge();
  ASSERT_TRUE(s.memo_path());
  EXPECT_NEAR(s.result().field_as_double("m")[5], 1.0, 1e-12);

  std::uint64_t retractions = 0, refolds = 0, underflows = 0;
  // Delete the extremum supplier three times in a row: with k=1 the
  // second deletion strips the refilled buffer again, so at least one
  // epoch must underflow and refold vertex 5's in-neighborhood.
  for (const graph::VertexId src : {0, 1, 2}) {
    MutationBatch b;
    b.remove_edge(src, 5);
    const SessionEpoch ep = s.apply(b);
    ASSERT_TRUE(ep.warm) << "blocked: " << (ep.blocker ? ep.blocker : "?");
    retractions += ep.stats.minmax_retractions;
    refolds += ep.stats.minmax_refolds;
    underflows += ep.stats.minmax_underflows;
  }
  EXPECT_NEAR(s.result().field_as_double("m")[5], 4.0, 1e-12);
  EXPECT_GT(retractions, 0u);
  EXPECT_GT(underflows, 0u);
  EXPECT_GT(refolds, 0u);
  // The warm state equals a from-scratch run on the mutated graph.
  test::expect_close(s.result().field_as_double("m"),
                     oracle(cp, s).field_as_double("m"), 1e-12);
}

TEST(RetractStream, MemoOffPreservesLegacyColdBehavior) {
  const auto cp = compile_dv(kMinPublishFloat);
  DvStreamSession s(cp, fan_graph(), opts(/*memo_k=*/0));
  s.converge();
  EXPECT_FALSE(s.memo_path());
  MutationBatch b;
  b.remove_edge(0, 5);
  const SessionEpoch ep = s.apply(b);
  EXPECT_FALSE(ep.warm);
  ASSERT_NE(ep.blocker, nullptr);
  EXPECT_NE(std::string(ep.blocker).find("min/max"), std::string::npos);
  EXPECT_EQ(ep.stats.minmax_retractions, 0u);
  test::expect_close(s.result().field_as_double("m"),
                     oracle(cp, s).field_as_double("m"), 1e-12);
}

// ------------------------------------------------- memo ⊕ atomic fold path

TEST(RetractStream, MemoAgreesAcrossFoldPaths) {
  // Integer min qualifies for the lock-free fold path outright; the memo
  // records at both the buffered and the atomic Δ-fold sites. The two
  // sessions must agree bit-for-bit on state and on warm decisions
  // through a deletion stream.
  const auto cp = compile_dv(kMinPublishInt);
  auto ao = opts(/*memo_k=*/2);
  ao.run.fold_path = dv::FoldPath::kAtomic;
  auto bo = opts(/*memo_k=*/2);
  bo.run.fold_path = dv::FoldPath::kBuffered;
  DvStreamSession sa(cp, fan_graph(), ao);
  DvStreamSession sb(cp, fan_graph(), bo);
  sa.converge();
  sb.converge();
  ASSERT_TRUE(sa.atomic_path());
  ASSERT_TRUE(sa.memo_path());
  for (const graph::VertexId src : {0, 1, 2, 3}) {
    MutationBatch b;
    b.remove_edge(src, 5);
    const SessionEpoch ea = sa.apply(b);
    const SessionEpoch eb = sb.apply(b);
    ASSERT_TRUE(ea.warm) << "blocked: " << (ea.blocker ? ea.blocker : "?");
    ASSERT_EQ(ea.warm, eb.warm);
    ASSERT_EQ(ea.stats.supersteps, eb.stats.supersteps);
    const auto va = sa.result().field_as_int("m");
    const auto vb = sb.result().field_as_int("m");
    ASSERT_EQ(va, vb);
  }
  EXPECT_EQ(sa.result().field_as_int("m")[5], 5);  // mass(4) = 1 + 4
}

// -------------------------------------------------------------- snapshots

TEST(RetractSnapshot, RoundTripAndCrossTierRestore) {
  const auto cp = compile_dv(kMinPublishFloat);
  DvStreamSession s(cp, fan_graph(), opts(/*memo_k=*/2));
  s.converge();
  {
    MutationBatch b;
    b.remove_edge(0, 5);  // leave real retraction state in the memo
    ASSERT_TRUE(s.apply(b).warm);
  }
  const std::vector<std::uint8_t> snap = s.save_bytes();

  // Same-tier restore: the next deletion must take the same warm path
  // and land bit-exact with the uninterrupted session.
  auto r = DvStreamSession::restore_bytes(cp, snap, opts(2));
  // Cross-tier restore: tiers are bit-identical by contract, memo
  // included.
  auto rt = DvStreamSession::restore_bytes(cp, snap,
                                           opts(2, dv::ExecTier::kTree));
  MutationBatch b2;
  b2.remove_edge(1, 5);
  const SessionEpoch e0 = s.apply(b2);
  const SessionEpoch e1 = r->apply(b2);
  const SessionEpoch e2 = rt->apply(b2);
  ASSERT_TRUE(e0.warm);
  EXPECT_EQ(e0.warm, e1.warm);
  EXPECT_EQ(e0.warm, e2.warm);
  EXPECT_EQ(e0.stats.supersteps, e1.stats.supersteps);
  EXPECT_EQ(e0.stats.supersteps, e2.stats.supersteps);
  const auto want = s.result().field_as_double("m");
  for (const auto* restored : {r.get(), rt.get()}) {
    const auto got = restored->result().field_as_double("m");
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]),
                std::bit_cast<std::uint64_t>(want[i]))
          << "vertex " << i;
  }
}

TEST(RetractSnapshot, CapacityMismatchIsRefused) {
  const auto cp = compile_dv(kMinPublishFloat);
  DvStreamSession s(cp, fan_graph(), opts(/*memo_k=*/8));
  s.converge();
  const std::vector<std::uint8_t> snap = s.save_bytes();
  try {
    auto r = DvStreamSession::restore_bytes(cp, snap, opts(/*memo_k=*/4));
    FAIL() << "restore with a different minmax_memo_k must be refused";
  } catch (const dv::persist::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("minmax_memo_k"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace deltav
