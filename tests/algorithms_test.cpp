// Hand-written Pregel+ baselines vs. sequential oracles, plus their
// message-count behaviour (the properties Figure 4/5 depend on).
#include <gtest/gtest.h>

#include "algorithms/bfs.h"
#include "algorithms/connected_components.h"
#include "graph/graph_builder.h"
#include "algorithms/hits.h"
#include "algorithms/kcore.h"
#include "algorithms/mis.h"
#include "algorithms/pagerank.h"
#include "algorithms/pagerank_lookup.h"
#include "algorithms/sssp.h"
#include "test_util.h"

namespace deltav::algorithms {
namespace {

using test::expect_close;
using test::small_engine;

// ---------------------------------------------------------------- PageRank

TEST(PageRank, MatchesOracleOnRandomGraphs) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto g = graph::rmat(128, 512, seed);
    PageRankOptions opt;
    opt.engine = small_engine();
    const auto result = pagerank_pregel(g, opt);
    expect_close(result.rank, pagerank_oracle(g, 30), 1e-12);
  }
}

TEST(PageRank, StarGraphHasDominantCenter) {
  const auto g = graph::star(50);  // undirected star
  PageRankOptions opt;
  opt.engine = small_engine();
  const auto result = pagerank_pregel(g, opt);
  for (std::size_t leaf = 1; leaf <= 50; ++leaf)
    EXPECT_GT(result.rank[0], result.rank[leaf]);
}

TEST(PageRank, SendsEverySuperstepBeforeHalt) {
  const auto g = graph::cycle(10, /*directed=*/true);
  PageRankOptions opt;
  opt.iterations = 5;
  opt.engine = small_engine();
  opt.use_combiner = false;
  const auto result = pagerank_pregel(g, opt);
  // Each vertex sends one message per superstep while step+1 < 5.
  EXPECT_EQ(result.stats.total_messages_sent(), 10u * 4);
  EXPECT_EQ(result.stats.num_supersteps(), 5u);
}

TEST(PageRank, CombinerPreservesResults) {
  const auto g = test::small_directed(51);
  PageRankOptions with, without;
  with.engine = without.engine = small_engine();
  with.use_combiner = true;
  without.use_combiner = false;
  expect_close(pagerank_pregel(g, with).rank,
               pagerank_pregel(g, without).rank, 1e-12);
}

TEST(PageRank, SinksDoNotCrash) {
  // Path graph: last vertex has no out-edges (directed).
  const auto g = graph::path(6, /*directed=*/true);
  PageRankOptions opt;
  opt.engine = small_engine(1);
  const auto result = pagerank_pregel(g, opt);
  for (double r : result.rank) EXPECT_TRUE(std::isfinite(r));
}

// -------------------------------------------------------------------- SSSP

TEST(Sssp, MatchesDijkstraWeighted) {
  graph::RmatOptions ro;
  ro.weighted = true;
  for (std::uint64_t seed : {4ULL, 5ULL}) {
    const auto g = graph::rmat(128, 512, seed, ro);
    SsspOptions opt;
    opt.source = 0;
    opt.engine = small_engine();
    expect_close(sssp_pregel(g, opt).distance, sssp_oracle(g, 0), 1e-9);
  }
}

TEST(Sssp, UnweightedEqualsBfsDepth) {
  const auto g = graph::grid(8, 8);
  SsspOptions opt;
  opt.source = 0;
  opt.engine = small_engine();
  const auto d = sssp_pregel(g, opt).distance;
  // Manhattan distance on a grid.
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c)
      EXPECT_DOUBLE_EQ(d[r * 8 + c], static_cast<double>(r + c));
}

TEST(Sssp, UnreachableVerticesStayInfinite) {
  graph::GraphBuilder b(4, true);
  b.add_edge(0, 1);  // 2,3 unreachable
  const auto g = b.build();
  SsspOptions opt;
  opt.source = 0;
  opt.engine = small_engine(1);
  const auto d = sssp_pregel(g, opt).distance;
  EXPECT_DOUBLE_EQ(d[0], 0);
  EXPECT_DOUBLE_EQ(d[1], 1);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(Sssp, OnlyImprovementsTriggerSends) {
  // Path: each vertex improves exactly once → sends its out-edge once.
  const auto g = graph::path(10, /*directed=*/true);
  SsspOptions opt;
  opt.source = 0;
  opt.engine = small_engine(1);
  opt.use_combiner = false;
  const auto result = sssp_pregel(g, opt);
  EXPECT_EQ(result.stats.total_messages_sent(), 9u);
}

TEST(Sssp, InvalidSourceThrows) {
  const auto g = graph::path(4, true);
  SsspOptions opt;
  opt.source = 10;
  EXPECT_THROW(sssp_pregel(g, opt), CheckError);
}

// ---------------------------------------------------------------------- CC

TEST(ConnectedComponents, MatchesUnionFindOnRandom) {
  for (std::uint64_t seed : {6ULL, 7ULL, 8ULL}) {
    graph::RmatOptions ro;
    ro.directed = false;
    const auto g = graph::rmat(128, 200, seed, ro);  // sparse → many comps
    CcOptions opt;
    opt.engine = small_engine();
    const auto result = connected_components_pregel(g, opt);
    const auto oracle = connected_components_oracle(g);
    for (std::size_t v = 0; v < oracle.size(); ++v)
      EXPECT_EQ(result.component[v], oracle[v]);
  }
}

TEST(ConnectedComponents, DisjointCliquesKeepSeparateLabels) {
  graph::GraphBuilder b(6, false);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const auto g = b.build();
  CcOptions opt;
  opt.engine = small_engine(1);
  const auto comp = connected_components_pregel(g, opt).component;
  EXPECT_EQ(comp[0], 0u);
  EXPECT_EQ(comp[2], 0u);
  EXPECT_EQ(comp[3], 3u);
  EXPECT_EQ(comp[5], 3u);
}

TEST(ConnectedComponents, RejectsDirectedGraphs) {
  const auto g = graph::path(4, /*directed=*/true);
  EXPECT_THROW(connected_components_pregel(g, {}), CheckError);
}

// -------------------------------------------------------------------- HITS

TEST(Hits, MatchesOracle) {
  for (std::uint64_t seed : {9ULL, 10ULL}) {
    const auto g = graph::rmat(96, 400, seed);
    HitsOptions opt;
    opt.iterations = 5;
    opt.engine = small_engine();
    const auto result = hits_pregel(g, opt);
    std::vector<double> oh, oa;
    hits_oracle(g, 5, oh, oa);
    expect_close(result.hub, oh, 1e-9);
    expect_close(result.authority, oa, 1e-9);
  }
}

TEST(Hits, SourceSinkStructure) {
  // 0 → 1, 0 → 2: vertex 0 is a pure hub, 1 and 2 pure authorities.
  graph::GraphBuilder b(3, true);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  const auto g = b.build();
  HitsOptions opt;
  opt.iterations = 3;
  opt.engine = small_engine(1);
  const auto r = hits_pregel(g, opt);
  EXPECT_GT(r.hub[0], 0.0);
  EXPECT_DOUBLE_EQ(r.authority[0], 0.0);
  EXPECT_DOUBLE_EQ(r.hub[1], 0.0);
  EXPECT_GT(r.authority[1], 0.0);
}

TEST(Hits, CombinerAgreesWithUncombined) {
  const auto g = test::small_directed(61);
  HitsOptions with, without;
  with.engine = without.engine = small_engine();
  with.use_combiner = true;
  without.use_combiner = false;
  const auto a = hits_pregel(g, with);
  const auto b = hits_pregel(g, without);
  expect_close(a.hub, b.hub, 1e-9);
  expect_close(a.authority, b.authority, 1e-9);
}

// --------------------------------------------------- lookup-table strawman

TEST(PageRankLookup, MatchesPlainPageRank) {
  const auto g = test::small_directed(71);
  PageRankOptions plain;
  plain.engine = small_engine();
  PageRankLookupOptions lookup;
  lookup.engine = small_engine();
  expect_close(pagerank_lookup_table(g, lookup).rank,
               pagerank_pregel(g, plain).rank, 1e-9);
}

TEST(PageRankLookup, SendsFewerMessagesButBiggerOnes) {
  const auto g = graph::rmat(256, 2048, 81);
  PageRankOptions plain;
  plain.engine = small_engine();
  plain.use_combiner = false;
  PageRankLookupOptions lookup;
  lookup.engine = small_engine();
  const auto p = pagerank_pregel(g, plain);
  const auto l = pagerank_lookup_table(g, lookup);
  EXPECT_LT(l.stats.total_messages_sent(), p.stats.total_messages_sent());
  // §4.2.1's cost: id-tagged messages are 12 bytes vs 8, and the cache
  // grows vertex state.
  EXPECT_GT(l.table_bytes, 0u);
}

// --------------------------------------------------------------------- BFS

TEST(Bfs, MatchesOracleOnRandomGraphs) {
  for (std::uint64_t seed : {41ULL, 42ULL, 43ULL}) {
    const auto g = graph::rmat(128, 512, seed);
    BfsOptions opt;
    opt.engine = small_engine();
    EXPECT_EQ(bfs_pregel(g, opt).depth, bfs_oracle(g, 0)) << "seed " << seed;
  }
}

TEST(Bfs, AgreesWithUnitWeightSssp) {
  const auto g = graph::rmat(128, 512, 44);  // unweighted → unit edges
  BfsOptions bopt;
  bopt.engine = small_engine();
  SsspOptions sopt;
  sopt.engine = small_engine();
  EXPECT_EQ(bfs_pregel(g, bopt).depth, sssp_pregel(g, sopt).distance);
}

// ------------------------------------------------------------------ k-core

TEST(KCore, MatchesPeelingOracleOnRandomGraphs) {
  graph::RmatOptions ropt;
  ropt.directed = false;
  for (std::int64_t k : {2LL, 3LL, 5LL}) {
    const auto g = graph::rmat(128, 400, 51 + static_cast<std::uint64_t>(k),
                               ropt);
    KCoreOptions opt;
    opt.k = k;
    opt.engine = small_engine();
    EXPECT_EQ(kcore_pregel(g, opt).alive, kcore_oracle(g, k)) << "k=" << k;
  }
}

TEST(KCore, CycleSurvivesK2ButNotK3) {
  const auto g = graph::cycle(12, /*directed=*/false);
  EXPECT_EQ(kcore_oracle(g, 2), std::vector<std::uint8_t>(12, 1));
  EXPECT_EQ(kcore_oracle(g, 3), std::vector<std::uint8_t>(12, 0));
  KCoreOptions opt;
  opt.engine = small_engine();
  opt.k = 3;
  EXPECT_EQ(kcore_pregel(g, opt).alive, std::vector<std::uint8_t>(12, 0));
}

TEST(KCore, RejectsDirectedGraphs) {
  const auto g = graph::cycle(6, /*directed=*/true);
  EXPECT_THROW(kcore_pregel(g), CheckError);
}

// --------------------------------------------------------------------- MIS

TEST(Mis, MatchesGreedyOracleOnRandomGraphs) {
  graph::RmatOptions ropt;
  ropt.directed = false;
  for (std::uint64_t seed : {61ULL, 62ULL, 63ULL}) {
    const auto g = graph::rmat(128, 400, seed, ropt);
    MisOptions opt;
    opt.engine = small_engine();
    EXPECT_EQ(mis_pregel(g, opt).in_set, mis_oracle(g)) << "seed " << seed;
  }
}

TEST(Mis, PathAdmitsAlternatingVertices) {
  // Greedy by id on a path 0-1-2-...: every even vertex enters.
  const auto g = graph::path(9, /*directed=*/false);
  std::vector<std::uint8_t> want(9);
  for (std::size_t v = 0; v < 9; ++v) want[v] = v % 2 == 0 ? 1 : 0;
  EXPECT_EQ(mis_oracle(g), want);
  MisOptions opt;
  opt.engine = small_engine();
  EXPECT_EQ(mis_pregel(g, opt).in_set, want);
}

TEST(Mis, OrientLowHighMakesInNeighborsTheLowerIds) {
  const auto g = graph::path(5, /*directed=*/false);
  const auto oriented = orient_low_high(g);
  EXPECT_TRUE(oriented.directed());
  for (std::size_t v = 0; v < 5; ++v) {
    for (graph::VertexId u :
         oriented.in_neighbors(static_cast<graph::VertexId>(v)))
      EXPECT_LT(u, static_cast<graph::VertexId>(v));
    for (graph::VertexId u :
         oriented.out_neighbors(static_cast<graph::VertexId>(v)))
      EXPECT_GT(u, static_cast<graph::VertexId>(v));
  }
}

}  // namespace
}  // namespace deltav::algorithms
