// A tour of the ΔV language and compiler beyond the paper's benchmarks:
// writing a custom program, inspecting each compilation artifact
// (diagnostics, site table, state layout, transformed AST), the ϵ-slop
// extension, and the multiplicative-operator machinery (§6.4.1).
#include <iostream>

#include "dv/compiler.h"
#include "dv/runtime/runner.h"
#include "graph/generators.h"

int main() {
  using namespace deltav;

  // A custom program: "influence" gossip. Every vertex starts with unit
  // influence; each round it absorbs the average of its neighbors, decayed.
  // The && aggregation tracks whether the whole neighborhood is active —
  // a multiplicative (absorbing-element) aggregation per §6.4.1.
  const std::string source = R"(
    param rounds : int;
    init {
      local influence : float = 1.0;
      local active    : bool  = true;
      local all_on    : bool  = true
    };
    iter r {
      let nbr_sum : float = +  [ u.influence | u <- #neighbors ] in
      let nbr_all : bool  = && [ u.active    | u <- #neighbors ] in
      influence = 0.5 * influence + 0.5 * (nbr_sum / |#neighbors|);
      all_on = nbr_all;
      active = influence > 0.25
    } until { r >= rounds }
  )";

  std::cout << "== compiling ==\n";
  const auto cp = dv::compile(source);
  for (const auto& w : cp.diagnostics.warnings())
    std::cout << "warning: " << w << "\n";

  std::cout << "\naggregation sites:\n";
  for (const auto& site : cp.program.sites) {
    std::cout << "  site " << site.id << ": op " << dv::agg_op_name(site.op)
              << " over " << dv::graph_dir_name(site.pull_dir)
              << (site.multiplicative()
                      ? "  [multiplicative: nnAcc+aggNulls triple]"
                      : "")
              << "\n";
  }
  std::cout << "\nvertex state: " << cp.layout.summary() << "\n";
  std::cout << "\ntransformed program:\n" << cp.dump() << "\n";

  std::cout << "== running ==\n";
  const auto g = graph::barabasi_albert(2000, 3, /*seed=*/9);
  dv::DvRunOptions options;
  options.engine.num_workers = 4;
  options.params = {{"rounds", dv::Value::of_int(12)}};
  const auto result = dv::run_program(cp, g, options);

  const auto influence = result.field_as_double("influence");
  double total = 0;
  std::size_t active = 0;
  const int active_slot = result.field_slot("active");
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    total += influence[v];
    active += result.at(static_cast<graph::VertexId>(v), active_slot).as_b();
  }
  std::cout << "total influence " << total << " (conserved ≈ |V| = "
            << g.num_vertices() << "), active vertices " << active << "\n";
  std::cout << "messages " << result.stats.total_messages_sent() << " in "
            << result.supersteps << " supersteps\n\n";

  // The ϵ-slop extension (§9 future work): trade accuracy for traffic.
  std::cout << "== ϵ-slop sweep ==\n";
  for (double eps : {0.0, 1e-4, 1e-2}) {
    dv::CompileOptions o;
    o.epsilon = eps;
    const auto r = dv::run_program(dv::compile(source, o), g, options);
    std::cout << "  eps=" << eps << ": "
              << r.stats.total_messages_sent() << " messages\n";
  }
  return 0;
}
