// Quickstart: compile a ΔV program, run it on a graph, inspect results.
//
//   $ ./quickstart
//
// This is the 60-second tour: write vertex-centric code in ΔV's pull-based
// query style, let the compiler incrementalize it (§6 of the paper), and
// run it on the bundled BSP engine. No flags, no data files.
#include <iostream>

#include "dv/compiler.h"
#include "dv/runtime/runner.h"
#include "graph/generators.h"

int main() {
  using namespace deltav;

  // 1. A ΔV program: PageRank, exactly as in the paper's §5 listing.
  const std::string source = R"(
    param steps : int;
    init {
      local vl : float = 1.0 / graphSize;
      local pr : float = vl / |#out|
    };
    iter i {
      let sum : float = + [ u.pr | u <- #in ] in
      vl = 0.15 + 0.85 * (sum / graphSize);
      pr = vl / |#out|
    } until { i >= steps }
  )";

  // 2. Compile twice: the full ΔV pipeline, and ΔV* (no
  //    incrementalization) for comparison.
  const dv::CompiledProgram incremental = dv::compile(source);
  const dv::CompiledProgram plain =
      dv::compile(source, dv::CompileOptions{.incrementalize = false});

  std::cout << "compiled vertex state: ΔV = " << incremental.state_bytes()
            << " B, ΔV* = " << plain.state_bytes() << " B\n\n";

  // 3. A scale-free test graph.
  const graph::CsrGraph g = graph::rmat(10000, 80000, /*seed=*/42);
  std::cout << "graph: " << g.summary() << "\n\n";

  // 4. Run both variants.
  dv::DvRunOptions options;
  options.engine.num_workers = 4;
  options.params = {{"steps", dv::Value::of_int(29)}};

  const auto inc = dv::run_program(incremental, g, options);
  const auto base = dv::run_program(plain, g, options);

  // 5. Same answers...
  const auto ranks = inc.field_as_double("vl");
  const auto ranks_base = base.field_as_double("vl");
  double max_diff = 0;
  for (std::size_t v = 0; v < ranks.size(); ++v)
    max_diff = std::max(max_diff, std::abs(ranks[v] - ranks_base[v]));
  std::cout << "max rank difference ΔV vs ΔV*: " << max_diff << "\n";

  // ...far fewer messages.
  std::cout << "messages: ΔV = " << inc.stats.total_messages_sent()
            << ", ΔV* = " << base.stats.total_messages_sent() << "  ("
            << static_cast<double>(base.stats.total_messages_sent()) /
                   static_cast<double>(inc.stats.total_messages_sent())
            << "x reduction)\n\n";

  // 6. Peek at what the compiler did (§6's transformations, in the
  //    paper's notation).
  std::cout << "transformed program (ΔV):\n" << incremental.dump() << "\n";
  return 0;
}
