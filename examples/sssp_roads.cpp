// Scenario: shortest paths over a weighted road-like network.
//
// Builds a grid "city" with randomly weighted street segments plus a few
// express edges, runs the ΔV SSSP program from a depot vertex, and
// cross-checks a handful of destinations against Dijkstra. Demonstrates
// weighted graphs (u.edge), program parameters, and convergence via
// `until { stable }`.
#include <iomanip>
#include <iostream>

#include "algorithms/sssp.h"
#include "common/rng.h"
#include "dv/compiler.h"
#include "dv/programs/programs.h"
#include "dv/runtime/runner.h"
#include "graph/graph_builder.h"

int main() {
  using namespace deltav;

  // A 40×40 street grid; weights are travel minutes.
  const std::size_t rows = 40, cols = 40;
  Rng rng(7);
  graph::GraphBuilder builder(rows * cols, /*directed=*/true);
  builder.keep_weights(true);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<graph::VertexId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      // Two-way streets with independent per-direction congestion.
      if (c + 1 < cols) {
        builder.add_edge(id(r, c), id(r, c + 1), rng.next_double(1.0, 5.0));
        builder.add_edge(id(r, c + 1), id(r, c), rng.next_double(1.0, 5.0));
      }
      if (r + 1 < rows) {
        builder.add_edge(id(r, c), id(r + 1, c), rng.next_double(1.0, 5.0));
        builder.add_edge(id(r + 1, c), id(r, c), rng.next_double(1.0, 5.0));
      }
    }
  }
  // A few express routes across town.
  for (int i = 0; i < 20; ++i) {
    const auto a = static_cast<graph::VertexId>(
        rng.next_below(rows * cols));
    const auto b = static_cast<graph::VertexId>(
        rng.next_below(rows * cols));
    if (a != b) builder.add_edge(a, b, rng.next_double(2.0, 6.0));
  }
  const auto g = builder.build();
  const graph::VertexId depot = id(0, 0);

  std::cout << "road network: " << g.summary() << "\n";

  // Compile & run the paper's SSSP program (ΔV pipeline).
  const auto program = dv::compile(dv::programs::kSssp);
  dv::DvRunOptions options;
  options.engine.num_workers = 4;
  options.params = {{"source", dv::Value::of_int(depot)}};
  const auto result = dv::run_program(program, g, options);
  const auto dist = result.field_as_double("dist");

  std::cout << "converged in " << result.supersteps << " supersteps, "
            << result.stats.total_messages_sent() << " messages\n\n";

  // Spot-check against Dijkstra.
  const auto oracle = algorithms::sssp_oracle(g, depot);
  std::cout << "travel minutes from depot (ΔV vs Dijkstra):\n";
  for (auto [r, c] : {std::pair<std::size_t, std::size_t>{0, 39},
                      {20, 20},
                      {39, 0},
                      {39, 39}}) {
    const auto v = id(r, c);
    std::cout << "  corner(" << std::setw(2) << r << "," << std::setw(2)
              << c << "): " << std::fixed << std::setprecision(2) << dist[v]
              << " vs " << oracle[v]
              << (std::abs(dist[v] - oracle[v]) < 1e-9 ? "  ✓" : "  ✗")
              << "\n";
  }
  return 0;
}
