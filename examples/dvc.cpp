// dvc — the ΔV compiler driver.
//
// Compile a .dv file (or one of the built-in programs), inspect the
// compiler's output, and optionally run it over a generated dataset or an
// edge-list file:
//
//   dvc --program=pagerank --emit=ast            # transformed program
//   dvc --file=my.dv --emit=layout               # Table-2-style state size
//   dvc --program=sssp --run --dataset=wikipedia-s --scale=0.01 ...
//       --param=source=0
//   dvc --file=my.dv --variant=dvstar --run --edges=graph.el --directed
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/args.h"
#include "dv/codegen/cpp_backend.h"
#include "dv/compiler.h"
#include "dv/obs/report.h"
#include "dv/programs/programs.h"
#include "dv/runtime/runner.h"
#include "dv/runtime/vm.h"
#include "graph/datasets.h"
#include "graph/edge_list_io.h"

namespace {

using namespace deltav;

const char* builtin_source(const std::string& name) {
  if (name == "pagerank") return dv::programs::kPageRank;
  if (name == "pagerank-ug") return dv::programs::kPageRankUndirected;
  if (name == "sssp") return dv::programs::kSssp;
  if (name == "sssp_retract") return dv::programs::kSsspRetract;
  if (name == "cc") return dv::programs::kConnectedComponents;
  if (name == "hits") return dv::programs::kHits;
  if (name == "reachability") return dv::programs::kReachability;
  if (name == "maxgossip") return dv::programs::kMaxGossip;
  if (name == "bfs") return dv::programs::kBfs;
  if (name == "kcore") return dv::programs::kKCore;
  if (name == "mis") return dv::programs::kMis;
  if (name == "pointerjump") return dv::programs::kPointerJump;
  DV_FAIL("unknown built-in program '"
          << name
          << "' (try pagerank, pagerank-ug, sssp, sssp_retract, cc, hits, "
             "reachability, maxgossip, bfs, kcore, mis, pointerjump)");
}

/// Parses repeated --param=name=value bindings (int or float literals).
std::map<std::string, dv::Value> parse_params(const std::string& spec) {
  std::map<std::string, dv::Value> params;
  std::istringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    DV_CHECK_MSG(eq != std::string::npos,
                 "--param expects name=value, got '" << item << "'");
    const std::string name = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (value.find('.') != std::string::npos) {
      params[name] = dv::Value::of_float(std::stod(value));
    } else {
      params[name] = dv::Value::of_int(std::stoll(value));
    }
  }
  return params;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Args args(argc, argv);
    const std::string program =
        args.get_string("program", "", "built-in program name");
    const std::string file = args.get_string("file", "", "path to .dv file");
    const std::string variant = args.get_string(
        "variant", "dv", "dv (incrementalized) | dvstar | naive");
    const std::string emit = args.get_string(
        "emit", "summary",
        "summary | ast | layout | sites | warnings | cpp | bytecode");
    const std::string cpp_class = args.get_string(
        "class", "DvProgram", "class name for --emit=cpp");
    const double epsilon =
        args.get_double("epsilon", 0.0, "ϵ-slop (requires variant=dv)");
    const bool do_run = args.get_bool("run", false, "execute the program");
    const std::string dataset =
        args.get_string("dataset", "", "built-in dataset to run on");
    const double scale = args.get_double("scale", 0.05, "dataset scale");
    const std::string edges =
        args.get_string("edges", "", "edge-list file to run on");
    const bool directed =
        args.get_bool("directed", true, "edge-list direction");
    const bool weighted =
        args.get_bool("weighted", false, "edge-list has weights");
    const std::string param_spec = args.get_string(
        "param", "", "program parameters, e.g. source=0,steps=29");
    const int workers =
        static_cast<int>(args.get_int("workers", 4, "worker threads"));
    const std::string tier = args.get_string(
        "tier", "vm", "execution tier for --run: vm | tree | native");
    obs::ReportOptions obs_opts;
    obs_opts.metrics_path = args.get_string(
        "metrics", "", "write a metrics JSON document here after --run");
    obs_opts.trace_path = args.get_string(
        "trace", "", "write a span trace here (chrome://tracing / Perfetto)");
    obs_opts.trace_format = args.get_string(
        "trace_format", "chrome", "trace file format: chrome or jsonl");
    if (args.help_requested()) {
      std::cout << args.help();
      return 0;
    }
    args.check_unused();

    // --- source ---
    std::string source;
    if (!file.empty()) {
      std::ifstream in(file);
      DV_CHECK_MSG(in.good(), "cannot open " << file);
      std::ostringstream buf;
      buf << in.rdbuf();
      source = buf.str();
    } else if (!program.empty()) {
      source = builtin_source(program);
    } else {
      std::cerr << "dvc: pass --program=<name> or --file=<path> "
                   "(--help for usage)\n";
      return 2;
    }

    // --- compile ---
    dv::CompileOptions copts;
    if (variant == "dv") {
      copts.incrementalize = true;
    } else if (variant == "dvstar") {
      copts.incrementalize = false;
    } else if (variant == "naive") {
      copts.incrementalize = false;
      copts.naive_sends = true;
    } else {
      DV_FAIL("unknown --variant '" << variant << "'");
    }
    copts.epsilon = epsilon;
    const auto cp = dv::compile(source, copts);

    for (const auto& w : cp.diagnostics.warnings())
      std::cerr << "dvc: " << w << "\n";

    if (emit == "cpp") {
      std::cout << dv::emit_cpp(cp, cpp_class);
    } else if (emit == "bytecode") {
      std::cout << dv::to_string(dv::lower_program(cp));
    } else if (emit == "ast") {
      std::cout << cp.dump();
    } else if (emit == "layout") {
      std::cout << cp.layout.summary() << "\n";
    } else if (emit == "sites") {
      for (const auto& s : cp.program.sites)
        std::cout << "site " << s.id << ": " << dv::agg_op_name(s.op)
                  << " over " << dv::graph_dir_name(s.pull_dir) << " ["
                  << dv::type_name(s.elem_type) << "]"
                  << (s.multiplicative() ? " multiplicative" : "") << "\n";
    } else if (emit == "summary" || emit == "warnings") {
      std::cout << "variant " << variant << ": " << cp.num_sites()
                << " aggregation site(s), state " << cp.state_bytes()
                << " B, " << cp.program.stmts.size() << " statement(s)\n";
    } else {
      DV_FAIL("unknown --emit '" << emit << "'");
    }

    // --- run ---
    if (do_run) {
      graph::CsrGraph g;
      if (!edges.empty()) {
        g = graph::read_edge_list_file(
            edges, {.directed = directed, .weighted = weighted});
      } else if (!dataset.empty()) {
        g = graph::make_dataset(dataset, scale, weighted);
      } else {
        DV_FAIL("--run needs --dataset or --edges");
      }
      std::cout << "graph: " << g.summary() << "\n";
      // Inert when neither --metrics nor --trace was passed; otherwise
      // installs a collector for the duration of the run.
      obs::ObsSession obs(obs_opts);
      dv::DvRunOptions ropts;
      ropts.engine.num_workers = workers;
      ropts.tier = dv::parse_exec_tier(tier);
      ropts.params = parse_params(param_spec);
      ropts.collector = obs.collector();
      const auto result = dv::run_program(cp, g, ropts);
      std::cout << "done: " << result.stats.summary() << "\n";
      std::cout << "tier: " << dv::exec_tier_name(result.tier_used);
      if (!result.native_fallback.empty())
        std::cout << " (native fallback: " << result.native_fallback << ")";
      std::cout << "\n";
      if (obs.enabled()) obs.flush();
      for (const auto& f : result.fields) {
        if (f.origin != dv::Field::Origin::kUser) continue;
        // Print a small sample of each user field.
        std::cout << "  " << f.name << " =";
        const int slot = result.field_slot(f.name);
        for (graph::VertexId v = 0;
             v < std::min<std::size_t>(5, result.num_vertices); ++v) {
          const auto& val = result.at(v, slot);
          std::cout << " ";
          switch (val.type) {
            case dv::Type::kFloat: std::cout << val.as_f(); break;
            case dv::Type::kBool:
              std::cout << (val.as_b() ? "true" : "false");
              break;
            default: std::cout << val.as_i(); break;
          }
        }
        std::cout << " ...\n";
      }
    }
    return 0;
  } catch (const deltav::dv::CompileError& e) {
    std::cerr << "dvc: compile error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "dvc: " << e.what() << "\n";
    return 1;
  }
}
