// Scenario: link analysis of a synthetic web crawl.
//
// Runs the paper's two iterative workloads — PageRank and the
// non-converging HITS — over the web-crawl stand-in with both compiled
// variants and the hand-written Pregel+ baselines, printing a ranked
// report and the communication savings. This is the workload family where
// the paper's incrementalization pays off (§7.2, Figure 4).
#include <algorithm>
#include <iostream>

#include "algorithms/hits.h"
#include "algorithms/pagerank.h"
#include "dv/compiler.h"
#include "dv/programs/programs.h"
#include "dv/runtime/runner.h"
#include "graph/datasets.h"

namespace {

void print_top(const std::string& label, const std::vector<double>& score,
               int k = 5) {
  std::vector<std::size_t> order(score.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      return score[a] > score[b];
                    });
  std::cout << label << ": ";
  for (int i = 0; i < k; ++i)
    std::cout << "v" << order[static_cast<std::size_t>(i)] << "("
              << score[order[static_cast<std::size_t>(i)]] << ") ";
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace deltav;

  const auto g = graph::make_dataset("wikipedia-s", /*scale=*/0.02);
  std::cout << "crawl: " << g.summary() << "\n\n";

  // ---- PageRank: three systems, one answer ----
  const auto pr_dv = dv::compile(dv::programs::kPageRank);
  const auto pr_star = dv::compile(
      dv::programs::kPageRank, dv::CompileOptions{.incrementalize = false});
  dv::DvRunOptions run_opts;
  run_opts.engine.num_workers = 4;
  run_opts.params = {{"steps", dv::Value::of_int(29)}};

  const auto r_dv = dv::run_program(pr_dv, g, run_opts);
  const auto r_star = dv::run_program(pr_star, g, run_opts);
  algorithms::PageRankOptions hand_opts;
  hand_opts.engine.num_workers = 4;
  const auto r_hand = algorithms::pagerank_pregel(g, hand_opts);

  print_top("top pages (ΔV)     ", r_dv.field_as_double("vl"));
  print_top("top pages (ΔV*)    ", r_star.field_as_double("vl"));
  print_top("top pages (Pregel+)", r_hand.rank);

  std::cout << "\nPageRank messages: ΔV " << r_dv.stats.total_messages_sent()
            << " | ΔV* " << r_star.stats.total_messages_sent()
            << " | Pregel+ " << r_hand.stats.total_messages_sent() << "\n";
  std::cout << "simulated cluster time: ΔV "
            << r_dv.stats.total_sim_seconds() << "s | ΔV* "
            << r_star.stats.total_sim_seconds() << "s | Pregel+ "
            << r_hand.stats.total_sim_seconds() << "s\n\n";

  // ---- HITS: hub/authority structure of the crawl ----
  run_opts.params = {{"steps", dv::Value::of_int(5)}};
  const auto hits_dv =
      dv::run_program(dv::compile(dv::programs::kHits), g, run_opts);
  print_top("top hubs       ", hits_dv.field_as_double("hub"));
  print_top("top authorities", hits_dv.field_as_double("auth"));
  return 0;
}
